//! Framed, checksummed binary wire protocol.
//!
//! Every message travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "LBCN"
//! 4       1     version (currently 1)
//! 5       1     opcode
//! 6       2     flags, reserved, must be zero   (u16 LE)
//! 8       8     request id                      (u64 LE)
//! 16      4     payload length                  (u32 LE)
//! 20      4     CRC-32/IEEE over bytes 0..20 ++ payload
//! 24      len   payload
//! ```
//!
//! The checksum covers the header fields *and* the payload, so a
//! flipped bit anywhere in a frame — opcode, request id, length,
//! payload — is caught (CRC-32 detects every burst error up to 32
//! bits). Integers are little-endian; node ids are `u32`
//! ([`lbc_graph::NodeId`]), matching the CSR the server reads from.
//!
//! Decoding is **incremental**: [`FrameDecoder`] accepts bytes in
//! arbitrary chunks (the proptests feed it one byte at a time) and
//! yields complete frames as they materialise. Encoding is a plain
//! byte append; partial *writes* are the transport's concern — the
//! reactor's per-connection outbox tracks a cursor and resumes
//! mid-frame wherever the socket stopped accepting bytes.

use lbc_graph::{GraphDelta, NodeId};
use lbc_obs::{Event, EventKind, HistSnapshot, ObsSnapshot, HIST_BUCKETS};
use lbc_runtime::{Answer, CacheStats, Query};

use crate::error::WireError;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"LBCN";
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed frame-header size in bytes (payload follows).
pub const HEADER_LEN: usize = 24;
/// Default cap on a single frame's payload. Large enough for a 64k
/// query batch (~9 bytes/query), small enough that a hostile declared
/// length cannot balloon the decoder.
pub const DEFAULT_MAX_PAYLOAD: u32 = 4 << 20;

/// Request opcodes (high bit clear).
pub mod opcode {
    pub const QUERY_BATCH: u8 = 0x01;
    pub const SUBMIT_DELTA: u8 = 0x02;
    pub const CACHE_STATS: u8 = 0x03;
    pub const INFO: u8 = 0x04;
    pub const PING: u8 = 0x05;
    pub const REPL_VOTE: u8 = 0x06;
    /// Promotion-time reconciliation: ask a peer for the WAL records
    /// after a sequence number. Served over the ordinary query port
    /// (like [`REPL_VOTE`]) so a follower whose replication port is
    /// still closed can answer an election winner's pull.
    pub const WAL_PULL: u8 = 0x07;
    /// Observability snapshot: every registered metric (counters,
    /// gauges, histograms) plus recent structured events. Answered
    /// inline by the reactor ([`STATS_RESP`]).
    pub const STATS: u8 = 0x08;
    /// Replication follower → primary opcodes (0x10 block).
    pub const REPL_HELLO: u8 = 0x10;
    pub const REPL_ACK: u8 = 0x11;
    pub const REPL_STATUS: u8 = 0x12;
    /// Response opcodes (high bit set).
    pub const ANSWERS: u8 = 0x81;
    pub const DELTA_DONE: u8 = 0x82;
    pub const CACHE_STATS_RESP: u8 = 0x83;
    pub const INFO_RESP: u8 = 0x84;
    pub const PONG: u8 = 0x85;
    pub const VOTE_RESP: u8 = 0x86;
    /// Answer to [`WAL_PULL`]: a contiguous suffix of encoded WAL
    /// records.
    pub const WAL_SUFFIX: u8 = 0x87;
    /// Answer to [`STATS`]: the serialised metrics + events snapshot.
    pub const STATS_RESP: u8 = 0x88;
    /// Replication primary → follower opcodes (0x90 block).
    pub const SNAP_BEGIN: u8 = 0x90;
    pub const SNAP_CHUNK: u8 = 0x91;
    pub const SNAP_END: u8 = 0x92;
    pub const WAL_REC: u8 = 0x93;
    pub const HEARTBEAT: u8 = 0x94;
    pub const STATUS_RESP: u8 = 0x95;
    pub const REPL_DENY: u8 = 0x96;
    pub const ERROR: u8 = 0xFF;
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — table built at compile
// time, same shape as the store's CRC-64 but the 4-byte flavour the
// frame header has room for.

const CRC32_POLY: u32 = 0xEDB8_8320;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut r = i as u32;
        let mut bit = 0;
        while bit < 8 {
            r = if r & 1 == 1 {
                CRC32_POLY ^ (r >> 1)
            } else {
                r >> 1
            };
            bit += 1;
        }
        table[i] = r;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Streaming CRC-32/IEEE: `crc32_update(crc32_update(!0, a), b)` equals
/// `crc32_update(!0, a ++ b)`; finalise by inverting.
fn crc32_update(mut c: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32/IEEE of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(!0, bytes)
}

// ---------------------------------------------------------------------
// Frame encode

/// One decoded frame: validated header + raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub opcode: u8,
    pub request_id: u64,
    pub payload: Vec<u8>,
}

/// Encode one frame into `out` (appended; the caller owns framing
/// order). The only failure mode is an oversized payload.
pub fn encode_frame(
    out: &mut Vec<u8>,
    op: u8,
    request_id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    if payload.len() as u64 > DEFAULT_MAX_PAYLOAD as u64 {
        return Err(WireError::Oversized {
            len: payload.len() as u32,
            max: DEFAULT_MAX_PAYLOAD,
        });
    }
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(op);
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = !crc32_update(crc32_update(!0, &out[start..start + 20]), payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

// ---------------------------------------------------------------------
// Incremental frame decode

/// Incremental (partial-read tolerant) frame decoder.
///
/// Feed arbitrary chunks with [`FrameDecoder::push`], then drain
/// complete frames with [`FrameDecoder::next_frame`]. `Ok(None)` means
/// "need more bytes"; any `Err` is fatal for the stream (framing can
/// no longer be trusted).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames. Compacted
    /// lazily so 1-byte pushes do not O(n²) the buffer.
    pos: usize,
    max_payload: u32,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// Decoder with the default payload cap.
    pub fn new() -> Self {
        FrameDecoder::with_max_payload(DEFAULT_MAX_PAYLOAD)
    }

    /// Decoder with an explicit payload cap (tests use tiny caps).
    pub fn with_max_payload(max_payload: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_payload,
        }
    }

    /// Append raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing, once the dead prefix dominates.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a yielded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to yield the next complete frame.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let header = &avail[..HEADER_LEN];
        if header[0..4] != MAGIC {
            return Err(WireError::BadMagic {
                got: [header[0], header[1], header[2], header[3]],
            });
        }
        if header[4] != VERSION {
            return Err(WireError::UnsupportedVersion { got: header[4] });
        }
        let flags = u16::from_le_bytes([header[6], header[7]]);
        if flags != 0 {
            return Err(WireError::NonZeroFlags { got: flags });
        }
        let len = u32::from_le_bytes([header[16], header[17], header[18], header[19]]);
        if len > self.max_payload {
            return Err(WireError::Oversized {
                len,
                max: self.max_payload,
            });
        }
        let total = HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let declared = u32::from_le_bytes([header[20], header[21], header[22], header[23]]);
        let actual = !crc32_update(crc32_update(!0, &avail[..20]), &avail[HEADER_LEN..total]);
        if actual != declared {
            return Err(WireError::ChecksumMismatch {
                expected: declared,
                got: actual,
            });
        }
        let frame = Frame {
            opcode: header[5],
            request_id: u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")),
            payload: avail[HEADER_LEN..total].to_vec(),
        };
        self.pos += total;
        Ok(Some(frame))
    }
}

/// Cursor-tracked write buffer — the partial-write half of the
/// protocol's incremental state machines. Encoders append whole
/// frames; the transport drains from the cursor with however many
/// bytes the socket accepts and resumes mid-frame; the dead prefix is
/// compacted once it dominates.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// Empty buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Bytes not yet drained.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether everything queued has been drained.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// The undrained bytes (pass to `write`).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Append-access to the underlying buffer for frame encoders.
    pub fn encode_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Mark `n` bytes as written to the transport.
    pub fn advance(&mut self, n: usize) {
        self.pos += n;
        debug_assert!(self.pos <= self.buf.len());
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 64 * 1024 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

// ---------------------------------------------------------------------
// Payload cursor helpers (strict: every read is bounds-checked and the
// typed decoders demand exact consumption).

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
    opcode: u8,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], opcode: u8) -> Self {
        Cursor {
            bytes,
            at: 0,
            opcode,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(WireError::Truncated {
                opcode: self.opcode,
            })?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A `u16`-length-prefixed UTF-8 string.
    fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadField {
            opcode: self.opcode,
            what,
        })
    }

    /// Bytes still unread.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at != self.bytes.len() {
            return Err(WireError::TrailingBytes {
                opcode: self.opcode,
                extra: self.bytes.len() - self.at,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Typed messages

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Batched membership queries against the served clustering.
    QueryBatch(Vec<Query>),
    /// Mutate the served graph; the server re-clusters warm.
    SubmitDelta(GraphDelta),
    /// Registry cache counters.
    CacheStats,
    /// Served dataset shape (name, n, m, k) — what a load generator
    /// needs before it can draw in-range queries.
    Info,
    /// Liveness probe.
    Ping,
    /// Failover election: a follower asks this node to confirm that
    /// `candidate_id` (at `candidate_seq`) may promote. Answered with
    /// [`Response::Vote`]; served inline by the reactor so elections
    /// work over the ordinary query port.
    ReplVote {
        candidate_id: u64,
        candidate_seq: u64,
        /// The term the candidate proposes to lead. Voters grant at
        /// most one candidate per term, remember the grant by term
        /// (persisted when a store is attached), and refuse proposals
        /// below their own current term. Receiving a proposal above a
        /// node's current term also *fences* it: a still-serving
        /// primary steps down the instant the successor election
        /// reaches it.
        term: u64,
    },
    /// Promotion-time reconciliation: ask this node for every WAL
    /// record with sequence number strictly greater than `after_seq`.
    /// Answered with [`Response::WalSuffix`]. Served inline by the
    /// reactor (like votes) so an election winner can pull a missing
    /// suffix from a loser whose replication port is closed.
    WalPull { after_seq: u64 },
    /// Observability snapshot: every registered metric plus up to
    /// `max_events` recent ring events. Answered inline by the reactor
    /// with [`Response::Stats`].
    Stats { max_events: u32 },
}

/// Replication role a serving process reports in [`ServerInfo`] and
/// [`ReplStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts deltas and streams them to followers.
    Primary = 0,
    /// Read-only replica applying the primary's stream.
    Follower = 1,
    /// A follower promoted after primary death; accepts deltas again.
    Promoted = 2,
}

impl Role {
    /// Decode a wire byte; `None` for unknown roles.
    pub fn from_u8(v: u8) -> Option<Role> {
        match v {
            0 => Some(Role::Primary),
            1 => Some(Role::Follower),
            2 => Some(Role::Promoted),
            _ => None,
        }
    }

    /// Lowercase display name, as event-ring details spell it.
    pub fn as_str(&self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
            Role::Promoted => "promoted",
        }
    }
}

/// Served dataset description ([`Response::Info`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    pub dataset: String,
    pub n: u64,
    pub m: u64,
    pub k: u32,
    /// Highest delta sequence number applied to the served state
    /// (0 when no delta has ever committed) — the replication-lag
    /// observable: `primary.applied_seq - follower.applied_seq`.
    ///
    /// Travels in the extensible payload tail; decodes as 0 from
    /// servers that predate replication.
    pub applied_seq: u64,
    /// Replication role of the answering process. Also in the tail;
    /// pre-replication servers decode as [`Role::Primary`].
    pub role: Role,
    /// True when this node ran a failover election but could not reach
    /// a strict majority of its fixed membership — it stays a
    /// read-only follower. In the tail; pre-quorum servers decode as
    /// `false`.
    pub no_quorum: bool,
    /// Grants seen (including the node's own vote) in the most recent
    /// election round, and the strict-majority threshold it needed.
    /// Both 0 when no quorum-mode election has run. In the tail.
    pub votes_seen: u16,
    pub votes_needed: u16,
    /// Size of the fixed membership list this node was configured
    /// with; 0 when replication runs without quorum mode. In the tail.
    pub member_count: u16,
    /// Where this node serves (or would serve, once promoted) the
    /// replication stream — how an election loser or a healed minority
    /// node learns the address to re-follow when it has no roster
    /// naming the winner. Empty when the node cannot be promoted. In
    /// the tail; older servers decode as empty.
    pub repl_addr: String,
    /// The node's current replication term (generation number) — the
    /// fence clients and election polls compare against: any frame
    /// claiming a lower term than a term the observer has already seen
    /// is from a deposed lineage. In the tail; pre-term servers decode
    /// as 0.
    pub term: u64,
}

/// One node's answer to a promotion-confirmation poll
/// ([`Response::Vote`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteResp {
    /// Whether this node agrees the candidate may promote.
    pub granted: bool,
    pub voter_id: u64,
    /// The voter's own applied sequence at answer time.
    pub voter_seq: u64,
    pub voter_role: Role,
    /// The voter's current term after processing the request. A term
    /// above the candidate's proposal means the proposal is stale —
    /// some election already moved past it — and the candidate must
    /// re-propose higher, never retry the same number.
    pub term: u64,
}

/// Outcome of a delta submission ([`Response::DeltaDone`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaSummary {
    pub n: u64,
    pub m: u64,
    pub refreshed: u64,
    pub invalidated: u64,
    pub warm_rounds: u64,
    pub unconverged: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answers, one per query, in request order.
    Answers(Vec<Answer>),
    DeltaDone(DeltaSummary),
    CacheStats(CacheStats),
    Info(ServerInfo),
    Pong,
    /// Answer to [`Request::ReplVote`].
    Vote(VoteResp),
    /// Answer to [`Request::WalPull`]: every retained WAL record with
    /// sequence number strictly greater than the requested `after_seq`,
    /// each exactly as `lbc_store::wal::encode_record` laid it out, in
    /// increasing-seq order. Empty when the node holds nothing newer
    /// (or its retention window no longer covers the request — the
    /// puller must validate contiguity before applying).
    WalSuffix {
        records: Vec<Vec<u8>>,
    },
    /// Answer to [`Request::Stats`]: the node's full metrics + events
    /// snapshot.
    Stats(ObsSnapshot),
    /// Typed failure (the request id still echoes the request).
    Error {
        code: u16,
        message: String,
    },
}

/// Append a `u16`-length-prefixed UTF-8 string (truncated at 64 KiB).
fn put_str(p: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    let len = b.len().min(u16::MAX as usize);
    p.extend_from_slice(&(len as u16).to_le_bytes());
    p.extend_from_slice(&b[..len]);
}

/// Append a `u32`-count-prefixed roster of [`PeerLag`] entries.
fn put_roster(p: &mut Vec<u8>, roster: &[PeerLag]) {
    p.extend_from_slice(&(roster.len() as u32).to_le_bytes());
    for peer in roster {
        p.extend_from_slice(&peer.follower_id.to_le_bytes());
        p.extend_from_slice(&peer.applied_seq.to_le_bytes());
        put_str(p, &peer.addr);
        put_str(p, &peer.repl_addr);
    }
}

/// Append a `u32`-count-prefixed membership list. Only emitted when
/// non-empty (callers gate on that), so messages from nodes running
/// without quorum mode stay byte-identical to the pre-quorum wire
/// layout.
fn put_members(p: &mut Vec<u8>, members: &[Member]) {
    p.extend_from_slice(&(members.len() as u32).to_le_bytes());
    for m in members {
        p.extend_from_slice(&m.id.to_le_bytes());
        put_str(p, &m.addr);
    }
}

/// Serialise an [`ObsSnapshot`] as four `u32`-count-prefixed sections
/// (counters, gauges, histograms, events). Histogram buckets travel
/// sparse, `(index, count)` ascending — the same shape
/// [`lbc_obs::Histogram::snapshot`] produces.
fn put_snapshot(p: &mut Vec<u8>, s: &ObsSnapshot) {
    p.extend_from_slice(&(s.counters.len() as u32).to_le_bytes());
    for (name, v) in &s.counters {
        put_str(p, name);
        p.extend_from_slice(&v.to_le_bytes());
    }
    p.extend_from_slice(&(s.gauges.len() as u32).to_le_bytes());
    for (name, v) in &s.gauges {
        put_str(p, name);
        p.extend_from_slice(&v.to_le_bytes());
    }
    p.extend_from_slice(&(s.hists.len() as u32).to_le_bytes());
    for (name, h) in &s.hists {
        put_str(p, name);
        for v in [h.count, h.sum, h.min, h.max] {
            p.extend_from_slice(&v.to_le_bytes());
        }
        p.extend_from_slice(&(h.buckets.len() as u32).to_le_bytes());
        for &(idx, cnt) in &h.buckets {
            p.extend_from_slice(&idx.to_le_bytes());
            p.extend_from_slice(&cnt.to_le_bytes());
        }
    }
    p.extend_from_slice(&(s.events.len() as u32).to_le_bytes());
    for e in &s.events {
        p.extend_from_slice(&e.seq.to_le_bytes());
        p.extend_from_slice(&e.at_ms.to_le_bytes());
        p.push(e.kind as u8);
        put_str(p, &e.detail);
    }
}

/// Decode the [`put_snapshot`] layout. Every section count is bounded
/// by the payload size over its minimum entry width, so a hostile
/// count cannot force an allocation beyond the payload; bucket indices
/// must be in-range and strictly ascending so a hostile snapshot can
/// never drive `HistSnapshot::quantile` out of the bucket table.
fn take_snapshot(c: &mut Cursor, payload_len: usize) -> Result<ObsSnapshot, WireError> {
    let op = c.opcode;
    let bad = |what: &'static str| WireError::BadField { opcode: op, what };
    let bounded = |count: usize, min_entry: usize, what: &'static str| {
        if count > payload_len / min_entry + 1 {
            Err(bad(what))
        } else {
            Ok(count)
        }
    };
    let mut snap = ObsSnapshot::default();
    // Counter entry: empty name prefix (2) + u64 value (8).
    let n = bounded(c.u32()? as usize, 10, "counter count")?;
    for _ in 0..n {
        let name = c.str("counter name")?;
        snap.counters.push((name, c.u64()?));
    }
    let n = bounded(c.u32()? as usize, 10, "gauge count")?;
    for _ in 0..n {
        let name = c.str("gauge name")?;
        snap.gauges.push((name, c.u64()? as i64));
    }
    // Histogram entry: name (2) + count/sum/min/max (32) + bucket
    // count (4); each bucket is (u32, u64) = 12 more.
    let n = bounded(c.u32()? as usize, 38, "histogram count")?;
    for _ in 0..n {
        let name = c.str("histogram name")?;
        let mut h = HistSnapshot {
            count: c.u64()?,
            sum: c.u64()?,
            min: c.u64()?,
            max: c.u64()?,
            buckets: Vec::new(),
        };
        let nb = bounded(c.u32()? as usize, 12, "bucket count")?;
        h.buckets.reserve(nb);
        let mut prev: Option<u32> = None;
        for _ in 0..nb {
            let idx = c.u32()?;
            if idx as usize >= HIST_BUCKETS || prev.is_some_and(|p| idx <= p) {
                return Err(bad("bucket index"));
            }
            prev = Some(idx);
            h.buckets.push((idx, c.u64()?));
        }
        snap.hists.push((name, h));
    }
    // Event entry: seq (8) + at_ms (8) + kind (1) + empty detail (2).
    let n = bounded(c.u32()? as usize, 19, "event count")?;
    for _ in 0..n {
        let seq = c.u64()?;
        let at_ms = c.u64()?;
        let kind = EventKind::from_u8(c.u8()?).ok_or_else(|| bad("event kind"))?;
        snap.events.push(Event {
            seq,
            at_ms,
            kind,
            detail: c.str("event detail")?,
        });
    }
    Ok(snap)
}

const QUERY_SAME: u8 = 0;
const QUERY_OF: u8 = 1;
const QUERY_SIZE: u8 = 2;
const ANSWER_BOOL: u8 = 0;
const ANSWER_LABEL: u8 = 1;
const ANSWER_SIZE: u8 = 2;

impl Request {
    /// Opcode this request travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::QueryBatch(_) => opcode::QUERY_BATCH,
            Request::SubmitDelta(_) => opcode::SUBMIT_DELTA,
            Request::CacheStats => opcode::CACHE_STATS,
            Request::Info => opcode::INFO,
            Request::Ping => opcode::PING,
            Request::ReplVote { .. } => opcode::REPL_VOTE,
            Request::WalPull { .. } => opcode::WAL_PULL,
            Request::Stats { .. } => opcode::STATS,
        }
    }

    /// Serialise the payload (no frame header).
    pub fn payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Request::QueryBatch(qs) => {
                p.extend_from_slice(&(qs.len() as u32).to_le_bytes());
                for q in qs {
                    match *q {
                        Query::SameCluster(u, v) => {
                            p.push(QUERY_SAME);
                            p.extend_from_slice(&u.to_le_bytes());
                            p.extend_from_slice(&v.to_le_bytes());
                        }
                        Query::ClusterOf(v) => {
                            p.push(QUERY_OF);
                            p.extend_from_slice(&v.to_le_bytes());
                        }
                        Query::ClusterSize(v) => {
                            p.push(QUERY_SIZE);
                            p.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
            }
            Request::SubmitDelta(d) => {
                p.extend_from_slice(&(d.added_nodes() as u64).to_le_bytes());
                for edges in [d.added_edges(), d.removed_edges()] {
                    p.extend_from_slice(&(edges.len() as u32).to_le_bytes());
                    for &(u, v) in edges {
                        p.extend_from_slice(&u.to_le_bytes());
                        p.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Request::ReplVote {
                candidate_id,
                candidate_seq,
                term,
            } => {
                p.extend_from_slice(&candidate_id.to_le_bytes());
                p.extend_from_slice(&candidate_seq.to_le_bytes());
                p.extend_from_slice(&term.to_le_bytes());
            }
            Request::WalPull { after_seq } => {
                p.extend_from_slice(&after_seq.to_le_bytes());
            }
            Request::Stats { max_events } => {
                p.extend_from_slice(&max_events.to_le_bytes());
            }
            Request::CacheStats | Request::Info | Request::Ping => {}
        }
        p
    }

    /// Frame-encode into `out`.
    pub fn encode(&self, out: &mut Vec<u8>, request_id: u64) -> Result<(), WireError> {
        encode_frame(out, self.opcode(), request_id, &self.payload())
    }

    /// Parse a decoded frame back into a typed request.
    pub fn from_frame(frame: &Frame) -> Result<Request, WireError> {
        let op = frame.opcode;
        let mut c = Cursor::new(&frame.payload, op);
        let req = match op {
            opcode::QUERY_BATCH => {
                let count = c.u32()? as usize;
                // Cheapest well-formed query is 5 bytes; a hostile
                // count cannot force an allocation beyond the payload.
                if count > frame.payload.len() / 5 + 1 {
                    return Err(WireError::BadField {
                        opcode: op,
                        what: "query count",
                    });
                }
                let mut qs = Vec::with_capacity(count);
                for _ in 0..count {
                    let q = match c.u8()? {
                        QUERY_SAME => {
                            let u = c.u32()? as NodeId;
                            let v = c.u32()? as NodeId;
                            Query::SameCluster(u, v)
                        }
                        QUERY_OF => Query::ClusterOf(c.u32()? as NodeId),
                        QUERY_SIZE => Query::ClusterSize(c.u32()? as NodeId),
                        _ => {
                            return Err(WireError::BadField {
                                opcode: op,
                                what: "query tag",
                            })
                        }
                    };
                    qs.push(q);
                }
                Request::QueryBatch(qs)
            }
            opcode::SUBMIT_DELTA => {
                let added_nodes = c.u64()?;
                if added_nodes > u32::MAX as u64 {
                    return Err(WireError::BadField {
                        opcode: op,
                        what: "added node count",
                    });
                }
                let mut d = GraphDelta::new();
                d.add_nodes(added_nodes as usize);
                for add in [true, false] {
                    let count = c.u32()? as usize;
                    if count > frame.payload.len() / 8 + 1 {
                        return Err(WireError::BadField {
                            opcode: op,
                            what: "edge count",
                        });
                    }
                    for _ in 0..count {
                        let u = c.u32()? as NodeId;
                        let v = c.u32()? as NodeId;
                        if add {
                            d.add_edge(u, v);
                        } else {
                            d.remove_edge(u, v);
                        }
                    }
                }
                Request::SubmitDelta(d)
            }
            opcode::CACHE_STATS => Request::CacheStats,
            opcode::INFO => Request::Info,
            opcode::PING => Request::Ping,
            opcode::REPL_VOTE => Request::ReplVote {
                candidate_id: c.u64()?,
                candidate_seq: c.u64()?,
                term: c.u64()?,
            },
            opcode::WAL_PULL => Request::WalPull {
                after_seq: c.u64()?,
            },
            opcode::STATS => Request::Stats {
                max_events: c.u32()?,
            },
            other => return Err(WireError::BadOpcode { got: other }),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Opcode this response travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            Response::Answers(_) => opcode::ANSWERS,
            Response::DeltaDone(_) => opcode::DELTA_DONE,
            Response::CacheStats(_) => opcode::CACHE_STATS_RESP,
            Response::Info(_) => opcode::INFO_RESP,
            Response::Pong => opcode::PONG,
            Response::Vote(_) => opcode::VOTE_RESP,
            Response::WalSuffix { .. } => opcode::WAL_SUFFIX,
            Response::Stats(_) => opcode::STATS_RESP,
            Response::Error { .. } => opcode::ERROR,
        }
    }

    /// Serialise the payload (no frame header).
    pub fn payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Response::Answers(answers) => {
                p.extend_from_slice(&(answers.len() as u32).to_le_bytes());
                for a in answers {
                    match *a {
                        Answer::Bool(b) => {
                            p.push(ANSWER_BOOL);
                            p.extend_from_slice(&u32::from(b).to_le_bytes());
                        }
                        Answer::Label(l) => {
                            p.push(ANSWER_LABEL);
                            p.extend_from_slice(&l.to_le_bytes());
                        }
                        Answer::Size(s) => {
                            p.push(ANSWER_SIZE);
                            p.extend_from_slice(&s.to_le_bytes());
                        }
                    }
                }
            }
            Response::DeltaDone(d) => {
                for v in [
                    d.n,
                    d.m,
                    d.refreshed,
                    d.invalidated,
                    d.warm_rounds,
                    d.unconverged,
                ] {
                    p.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::CacheStats(s) => {
                for v in [
                    s.hits,
                    s.misses,
                    s.inserts,
                    s.evictions,
                    s.refreshes,
                    s.spills,
                    s.loads,
                    s.store_bytes,
                ] {
                    p.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::Info(info) => {
                // v1 layout (n, m, k, name) first, then a length-
                // prefixed tail for everything added since. Old
                // decoders that stop at the name never see the tail;
                // new decoders skip tail bytes they don't know —
                // mixed-version nodes (exactly what a rolling,
                // replication-driven upgrade produces) stay
                // interoperable in both directions.
                p.extend_from_slice(&info.n.to_le_bytes());
                p.extend_from_slice(&info.m.to_le_bytes());
                p.extend_from_slice(&info.k.to_le_bytes());
                put_str(&mut p, &info.dataset);
                let mut tail = Vec::with_capacity(16);
                tail.extend_from_slice(&info.applied_seq.to_le_bytes());
                tail.push(info.role as u8);
                // Quorum extension (this build's additions): decoders
                // that stop at the role skip these bytes.
                tail.push(info.no_quorum as u8);
                tail.extend_from_slice(&info.votes_seen.to_le_bytes());
                tail.extend_from_slice(&info.votes_needed.to_le_bytes());
                tail.extend_from_slice(&info.member_count.to_le_bytes());
                let ra = info.repl_addr.as_bytes();
                let ra_len = ra.len().min(u16::MAX as usize);
                tail.extend_from_slice(&(ra_len as u16).to_le_bytes());
                tail.extend_from_slice(&ra[..ra_len]);
                // Third tail extension: the node's replication term.
                // Decoders that stop at the repl addr skip these bytes.
                tail.extend_from_slice(&info.term.to_le_bytes());
                p.extend_from_slice(&(tail.len() as u16).to_le_bytes());
                p.extend_from_slice(&tail);
            }
            Response::Pong => {}
            Response::Vote(v) => {
                p.push(v.granted as u8);
                p.extend_from_slice(&v.voter_id.to_le_bytes());
                p.extend_from_slice(&v.voter_seq.to_le_bytes());
                p.push(v.voter_role as u8);
                p.extend_from_slice(&v.term.to_le_bytes());
            }
            Response::WalSuffix { records } => {
                p.extend_from_slice(&(records.len() as u32).to_le_bytes());
                for rec in records {
                    p.extend_from_slice(&(rec.len() as u32).to_le_bytes());
                    p.extend_from_slice(rec);
                }
            }
            Response::Stats(snap) => {
                put_snapshot(&mut p, snap);
            }
            Response::Error { code, message } => {
                p.extend_from_slice(&code.to_le_bytes());
                let msg = message.as_bytes();
                let len = msg.len().min(u16::MAX as usize);
                p.extend_from_slice(&(len as u16).to_le_bytes());
                p.extend_from_slice(&msg[..len]);
            }
        }
        p
    }

    /// Frame-encode into `out`.
    pub fn encode(&self, out: &mut Vec<u8>, request_id: u64) -> Result<(), WireError> {
        encode_frame(out, self.opcode(), request_id, &self.payload())
    }

    /// Parse a decoded frame back into a typed response.
    pub fn from_frame(frame: &Frame) -> Result<Response, WireError> {
        let op = frame.opcode;
        let mut c = Cursor::new(&frame.payload, op);
        let resp = match op {
            opcode::ANSWERS => {
                let count = c.u32()? as usize;
                if count > frame.payload.len() / 5 + 1 {
                    return Err(WireError::BadField {
                        opcode: op,
                        what: "answer count",
                    });
                }
                let mut answers = Vec::with_capacity(count);
                for _ in 0..count {
                    let tag = c.u8()?;
                    let v = c.u32()?;
                    let a = match tag {
                        ANSWER_BOOL => match v {
                            0 => Answer::Bool(false),
                            1 => Answer::Bool(true),
                            _ => {
                                return Err(WireError::BadField {
                                    opcode: op,
                                    what: "bool answer",
                                })
                            }
                        },
                        ANSWER_LABEL => Answer::Label(v),
                        ANSWER_SIZE => Answer::Size(v),
                        _ => {
                            return Err(WireError::BadField {
                                opcode: op,
                                what: "answer tag",
                            })
                        }
                    };
                    answers.push(a);
                }
                Response::Answers(answers)
            }
            opcode::DELTA_DONE => Response::DeltaDone(DeltaSummary {
                n: c.u64()?,
                m: c.u64()?,
                refreshed: c.u64()?,
                invalidated: c.u64()?,
                warm_rounds: c.u64()?,
                unconverged: c.u64()?,
            }),
            opcode::CACHE_STATS_RESP => Response::CacheStats(CacheStats {
                hits: c.u64()?,
                misses: c.u64()?,
                inserts: c.u64()?,
                evictions: c.u64()?,
                refreshes: c.u64()?,
                spills: c.u64()?,
                loads: c.u64()?,
                store_bytes: c.u64()?,
            }),
            opcode::INFO_RESP => {
                let n = c.u64()?;
                let m = c.u64()?;
                let k = c.u32()?;
                let dataset = c.str("dataset name")?;
                // Extensible tail: absent on pre-replication servers
                // (defaults below), and longer on future servers (the
                // unknown suffix is skipped, not rejected). The quorum
                // fields are themselves a tail extension: a 9-byte
                // tail from a pre-quorum server decodes with quorum
                // defaults.
                let mut info = ServerInfo {
                    dataset,
                    n,
                    m,
                    k,
                    applied_seq: 0,
                    role: Role::Primary,
                    no_quorum: false,
                    votes_seen: 0,
                    votes_needed: 0,
                    member_count: 0,
                    repl_addr: String::new(),
                    term: 0,
                };
                if c.remaining() > 0 {
                    let len = c.u16()? as usize;
                    let tail = c.take(len)?;
                    if tail.len() < 9 {
                        return Err(WireError::BadField {
                            opcode: op,
                            what: "info tail",
                        });
                    }
                    info.applied_seq = u64::from_le_bytes(tail[..8].try_into().expect("8"));
                    info.role = Role::from_u8(tail[8]).ok_or(WireError::BadField {
                        opcode: op,
                        what: "role",
                    })?;
                    if tail.len() >= 16 {
                        info.no_quorum = tail[9] != 0;
                        info.votes_seen = u16::from_le_bytes(tail[10..12].try_into().expect("2"));
                        info.votes_needed = u16::from_le_bytes(tail[12..14].try_into().expect("2"));
                        info.member_count = u16::from_le_bytes(tail[14..16].try_into().expect("2"));
                    }
                    // Second tail extension: the node's advertised
                    // replication listener, length-prefixed. The tail
                    // contract is skip-tolerant, so anything that does
                    // not parse as this extension (a short tail, a
                    // length that overruns, non-UTF-8 bytes) is treated
                    // as unknown future data and left empty — never an
                    // error.
                    if tail.len() >= 18 {
                        let alen = u16::from_le_bytes(tail[16..18].try_into().expect("2")) as usize;
                        if tail.len() >= 18 + alen {
                            if let Ok(addr) = std::str::from_utf8(&tail[18..18 + alen]) {
                                info.repl_addr = addr.to_string();
                            }
                            // Third tail extension: the replication
                            // term. Absent on pre-term servers (stays
                            // 0); same skip-tolerant contract as the
                            // repl-addr extension.
                            if tail.len() >= 18 + alen + 8 {
                                info.term = u64::from_le_bytes(
                                    tail[18 + alen..18 + alen + 8].try_into().expect("8"),
                                );
                            }
                        }
                    }
                }
                Response::Info(info)
            }
            opcode::PONG => Response::Pong,
            opcode::VOTE_RESP => {
                let granted = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => {
                        return Err(WireError::BadField {
                            opcode: op,
                            what: "vote grant",
                        })
                    }
                };
                Response::Vote(VoteResp {
                    granted,
                    voter_id: c.u64()?,
                    voter_seq: c.u64()?,
                    voter_role: Role::from_u8(c.u8()?).ok_or(WireError::BadField {
                        opcode: op,
                        what: "voter role",
                    })?,
                    term: c.u64()?,
                })
            }
            opcode::WAL_SUFFIX => {
                let count = c.u32()? as usize;
                // Cheapest well-formed record entry is 4 bytes (an
                // empty length prefix); a hostile count cannot force
                // an allocation beyond the payload.
                if count > frame.payload.len() / 4 + 1 {
                    return Err(WireError::BadField {
                        opcode: op,
                        what: "wal record count",
                    });
                }
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = c.u32()? as usize;
                    if len > c.remaining() {
                        return Err(WireError::BadField {
                            opcode: op,
                            what: "wal record length",
                        });
                    }
                    records.push(c.take(len)?.to_vec());
                }
                Response::WalSuffix { records }
            }
            opcode::STATS_RESP => Response::Stats(take_snapshot(&mut c, frame.payload.len())?),
            opcode::ERROR => {
                let code = c.u16()?;
                let len = c.u16()? as usize;
                let msg = c.take(len)?;
                let message = String::from_utf8_lossy(msg).into_owned();
                Response::Error { code, message }
            }
            other => return Err(WireError::BadOpcode { got: other }),
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Replication messages (primary ↔ follower stream)

/// One follower's replication progress as the primary sees it —
/// carried in every [`ReplMsg::Heartbeat`] so all followers share the
/// roster (ids, progress, *and addresses*) the failover election
/// needs: the seq is only a hint (each heartbeat snapshot is already
/// stale when sent); the addresses are what let survivors poll each
/// other live and re-follow the winner after promotion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerLag {
    pub follower_id: u64,
    /// Highest sequence number this follower has acknowledged.
    pub applied_seq: u64,
    /// The follower's query-port address (`lbc serve --listen`), where
    /// election polls and votes are answered. Empty if unknown.
    pub addr: String,
    /// Where this follower will serve replication if promoted
    /// (`--repl-listen`). Empty if it cannot become a primary.
    pub repl_addr: String,
}

/// One entry of the fixed replication membership list (`--members
/// id@addr,...`): a node id and the query-port address where its
/// votes, info polls, and WAL pulls are answered. Unlike the dynamic
/// [`PeerLag`] roster this list is configuration — every node carries
/// the same one, and a strict majority of it is the election quorum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    pub id: u64,
    pub addr: String,
}

/// Payload of [`ReplMsg::StatusResp`] — what `lbc repl-status` prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplStatus {
    pub role: Role,
    pub applied_seq: u64,
    /// The node's current replication term (0 before any election).
    pub term: u64,
    /// Connected followers (empty on a follower).
    pub peers: Vec<PeerLag>,
    /// Fixed membership this node runs quorum elections over (empty
    /// when replication runs without quorum mode). Wire-optional: a
    /// pre-quorum peer's StatusResp decodes with the defaults below.
    pub members: Vec<Member>,
    /// Grants seen / strict-majority threshold of the most recent
    /// election round (0/0 when none has run).
    pub votes_seen: u32,
    pub votes_needed: u32,
    /// True when the last election failed for lack of a membership
    /// majority and the node degraded to read-only.
    pub no_quorum: bool,
    /// Per-follower ack freshness, `(follower_id, ms_since_last_ack)`
    /// — the time axis [`PeerLag`]'s sequence numbers lack (a follower
    /// 0 records behind but silent for 30 s is the one about to be
    /// evicted). Empty on a follower and on pre-observability peers;
    /// wire-optional like the quorum fields.
    pub ack_ages: Vec<(u64, u64)>,
}

/// A message on the replication channel. Follower → primary messages
/// use request-space opcodes (high bit clear), primary → follower
/// stream messages use response-space opcodes — the same invariant the
/// query protocol keeps, so one decoder serves both ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplMsg {
    /// Follower introduces itself: its id, the highest sequence number
    /// it already holds ([`crate::wire::opcode::REPL_HELLO`]), and the
    /// addresses peers reach it at (query port for election polls,
    /// replication port it would serve from if promoted; either may be
    /// empty).
    Hello {
        follower_id: u64,
        have_seq: u64,
        /// The highest term the follower has observed. A primary that
        /// receives a Hello above its own term has been deposed — it
        /// fences (steps read-only) and denies the handshake rather
        /// than feeding a stale lineage to a newer follower.
        term: u64,
        addr: String,
        repl_addr: String,
        /// The fixed membership list the follower was configured with
        /// (empty when it runs without quorum mode). The primary
        /// rejects a follower whose list disagrees with its own —
        /// split-brain protection starts at the handshake.
        members: Vec<Member>,
    },
    /// Follower acknowledges having applied up to `applied_seq`.
    Ack { applied_seq: u64 },
    /// Ask the node for its replication status (any client may send).
    Status,
    /// Snapshot stream starts: the snapshot's applied_seq, its total
    /// byte length, and how many chunks will follow.
    SnapBegin {
        applied_seq: u64,
        total_len: u64,
        chunk_count: u32,
    },
    /// One snapshot chunk at `offset` in the snapshot byte stream.
    SnapChunk { offset: u64, bytes: Vec<u8> },
    /// Snapshot stream ends; `crc64` covers the whole snapshot byte
    /// stream (defence in depth on top of per-frame CRC-32).
    SnapEnd { crc64: u64 },
    /// One WAL record, exactly as `lbc_store::wal::encode_record` laid
    /// it out (magic + len + seq + crc64 + payload) — followers feed it
    /// straight to the store codec. `term` is the generation the
    /// serving primary writes under; a follower that has observed a
    /// higher term severs the stream instead of applying a deposed
    /// lineage's record.
    WalRec { term: u64, bytes: Vec<u8> },
    /// Primary liveness + replication roster. `epoch` is **global**:
    /// one roster snapshot is taken per tick and fanned out to every
    /// follower with the same epoch number, so two followers holding
    /// the same epoch hold byte-identical rosters. `term` fences like
    /// [`ReplMsg::WalRec`]: a heartbeat below the follower's observed
    /// term is a deposed primary still ticking.
    Heartbeat {
        epoch: u64,
        term: u64,
        roster: Vec<PeerLag>,
        /// The primary's fixed membership list, re-fanned on every
        /// tick so a follower that joined with an empty list adopts
        /// the cluster's. The adoption is surfaced through
        /// [`crate::ReplGate::adopted_members`]; the serve loop folds
        /// it into its own election config and — when a store is
        /// configured — persists it, so a restart agrees.
        members: Vec<Member>,
    },
    /// Answer to [`ReplMsg::Status`].
    StatusResp(ReplStatus),
    /// Primary refuses the handshake (duplicate follower id, unknown
    /// dataset, …) and will close the connection.
    Deny { reason: String },
}

impl ReplMsg {
    /// Opcode this message travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            ReplMsg::Hello { .. } => opcode::REPL_HELLO,
            ReplMsg::Ack { .. } => opcode::REPL_ACK,
            ReplMsg::Status => opcode::REPL_STATUS,
            ReplMsg::SnapBegin { .. } => opcode::SNAP_BEGIN,
            ReplMsg::SnapChunk { .. } => opcode::SNAP_CHUNK,
            ReplMsg::SnapEnd { .. } => opcode::SNAP_END,
            ReplMsg::WalRec { .. } => opcode::WAL_REC,
            ReplMsg::Heartbeat { .. } => opcode::HEARTBEAT,
            ReplMsg::StatusResp(_) => opcode::STATUS_RESP,
            ReplMsg::Deny { .. } => opcode::REPL_DENY,
        }
    }

    /// Serialise the payload (no frame header).
    pub fn payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            ReplMsg::Hello {
                follower_id,
                have_seq,
                term,
                addr,
                repl_addr,
                members,
            } => {
                p.extend_from_slice(&follower_id.to_le_bytes());
                p.extend_from_slice(&have_seq.to_le_bytes());
                p.extend_from_slice(&term.to_le_bytes());
                put_str(&mut p, addr);
                put_str(&mut p, repl_addr);
                if !members.is_empty() {
                    put_members(&mut p, members);
                }
            }
            ReplMsg::Ack { applied_seq } => {
                p.extend_from_slice(&applied_seq.to_le_bytes());
            }
            ReplMsg::Status => {}
            ReplMsg::SnapBegin {
                applied_seq,
                total_len,
                chunk_count,
            } => {
                p.extend_from_slice(&applied_seq.to_le_bytes());
                p.extend_from_slice(&total_len.to_le_bytes());
                p.extend_from_slice(&chunk_count.to_le_bytes());
            }
            ReplMsg::SnapChunk { offset, bytes } => {
                p.extend_from_slice(&offset.to_le_bytes());
                p.extend_from_slice(bytes);
            }
            ReplMsg::SnapEnd { crc64 } => {
                p.extend_from_slice(&crc64.to_le_bytes());
            }
            ReplMsg::WalRec { term, bytes } => {
                p.extend_from_slice(&term.to_le_bytes());
                p.extend_from_slice(bytes);
            }
            ReplMsg::Heartbeat {
                epoch,
                term,
                roster,
                members,
            } => {
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&term.to_le_bytes());
                put_roster(&mut p, roster);
                if !members.is_empty() {
                    put_members(&mut p, members);
                }
            }
            ReplMsg::StatusResp(s) => {
                p.push(s.role as u8);
                p.extend_from_slice(&s.applied_seq.to_le_bytes());
                p.extend_from_slice(&s.term.to_le_bytes());
                put_roster(&mut p, &s.peers);
                // The ack-age tail sits after the quorum tail, so any
                // ack ages force the quorum tail too (with defaults).
                let quorum_tail = !s.members.is_empty()
                    || s.no_quorum
                    || s.votes_needed > 0
                    || s.votes_seen > 0
                    || !s.ack_ages.is_empty();
                if quorum_tail {
                    put_members(&mut p, &s.members);
                    p.extend_from_slice(&s.votes_seen.to_le_bytes());
                    p.extend_from_slice(&s.votes_needed.to_le_bytes());
                    p.push(s.no_quorum as u8);
                    if !s.ack_ages.is_empty() {
                        p.extend_from_slice(&(s.ack_ages.len() as u32).to_le_bytes());
                        for &(id, ms) in &s.ack_ages {
                            p.extend_from_slice(&id.to_le_bytes());
                            p.extend_from_slice(&ms.to_le_bytes());
                        }
                    }
                }
            }
            ReplMsg::Deny { reason } => {
                put_str(&mut p, reason);
            }
        }
        p
    }

    /// Frame-encode into `out`.
    pub fn encode(&self, out: &mut Vec<u8>, request_id: u64) -> Result<(), WireError> {
        encode_frame(out, self.opcode(), request_id, &self.payload())
    }

    /// Parse a decoded frame back into a typed replication message.
    pub fn from_frame(frame: &Frame) -> Result<ReplMsg, WireError> {
        let op = frame.opcode;
        let mut c = Cursor::new(&frame.payload, op);
        // A hostile count cannot force an allocation beyond the
        // payload: each roster entry is at least 20 bytes on the wire
        // (two u64s + two empty length-prefixed addresses).
        let roster = |c: &mut Cursor, payload_len: usize| -> Result<Vec<PeerLag>, WireError> {
            let count = c.u32()? as usize;
            if count > payload_len / 20 + 1 {
                return Err(WireError::BadField {
                    opcode: op,
                    what: "roster count",
                });
            }
            let mut peers = Vec::with_capacity(count);
            for _ in 0..count {
                peers.push(PeerLag {
                    follower_id: c.u64()?,
                    applied_seq: c.u64()?,
                    addr: c.str("peer addr")?,
                    repl_addr: c.str("peer repl addr")?,
                });
            }
            Ok(peers)
        };
        // Optional membership tail: absent on pre-quorum peers (the
        // payload simply ends), decoded when present. Each entry is at
        // least 10 bytes on the wire (u64 id + empty length-prefixed
        // addr), bounding hostile counts.
        let members = |c: &mut Cursor, payload_len: usize| -> Result<Vec<Member>, WireError> {
            if c.remaining() == 0 {
                return Ok(Vec::new());
            }
            let count = c.u32()? as usize;
            if count > payload_len / 10 + 1 {
                return Err(WireError::BadField {
                    opcode: op,
                    what: "member count",
                });
            }
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                out.push(Member {
                    id: c.u64()?,
                    addr: c.str("member addr")?,
                });
            }
            Ok(out)
        };
        let msg = match op {
            opcode::REPL_HELLO => {
                let follower_id = c.u64()?;
                let have_seq = c.u64()?;
                let term = c.u64()?;
                let addr = c.str("hello addr")?;
                let repl_addr = c.str("hello repl addr")?;
                let tail = c.remaining() > 0;
                let ms = members(&mut c, frame.payload.len())?;
                if tail && ms.is_empty() {
                    // Canonical encoders omit an empty list entirely;
                    // accepting `count = 0` here would make the parse
                    // lossy (re-encoding drops the tail).
                    return Err(WireError::BadField {
                        opcode: op,
                        what: "empty membership tail",
                    });
                }
                ReplMsg::Hello {
                    follower_id,
                    have_seq,
                    term,
                    addr,
                    repl_addr,
                    members: ms,
                }
            }
            opcode::REPL_ACK => ReplMsg::Ack {
                applied_seq: c.u64()?,
            },
            opcode::REPL_STATUS => ReplMsg::Status,
            opcode::SNAP_BEGIN => ReplMsg::SnapBegin {
                applied_seq: c.u64()?,
                total_len: c.u64()?,
                chunk_count: c.u32()?,
            },
            opcode::SNAP_CHUNK => {
                let offset = c.u64()?;
                let bytes = c.take(c.remaining())?.to_vec();
                ReplMsg::SnapChunk { offset, bytes }
            }
            opcode::SNAP_END => ReplMsg::SnapEnd { crc64: c.u64()? },
            opcode::WAL_REC => ReplMsg::WalRec {
                term: c.u64()?,
                bytes: c.take(c.remaining())?.to_vec(),
            },
            opcode::HEARTBEAT => {
                let epoch = c.u64()?;
                let term = c.u64()?;
                let peers = roster(&mut c, frame.payload.len())?;
                let tail = c.remaining() > 0;
                let ms = members(&mut c, frame.payload.len())?;
                if tail && ms.is_empty() {
                    return Err(WireError::BadField {
                        opcode: op,
                        what: "empty membership tail",
                    });
                }
                ReplMsg::Heartbeat {
                    epoch,
                    term,
                    roster: peers,
                    members: ms,
                }
            }
            opcode::STATUS_RESP => {
                let role = Role::from_u8(c.u8()?).ok_or(WireError::BadField {
                    opcode: op,
                    what: "role",
                })?;
                let applied_seq = c.u64()?;
                let term = c.u64()?;
                let peers = roster(&mut c, frame.payload.len())?;
                let tail = c.remaining() > 0;
                let ms = members(&mut c, frame.payload.len())?;
                // The quorum tail is all-or-nothing: membership count
                // plus the three vote fields. A tail that decodes to
                // every default would not survive a re-encode (the
                // canonical form omits it), so reject it as hostile.
                let (votes_seen, votes_needed, no_quorum) = if tail {
                    let seen = c.u32()?;
                    let needed = c.u32()?;
                    let nq = c.u8()? != 0;
                    (seen, needed, nq)
                } else {
                    (0, 0, false)
                };
                // Optional ack-age tail after the quorum fields; each
                // entry is 16 bytes, bounding hostile counts. Like the
                // membership tail, canonical encoders omit it when
                // empty.
                let ack_ages = if tail && c.remaining() > 0 {
                    let count = c.u32()? as usize;
                    if count == 0 || count > frame.payload.len() / 16 + 1 {
                        return Err(WireError::BadField {
                            opcode: op,
                            what: "ack age count",
                        });
                    }
                    let mut ages = Vec::with_capacity(count);
                    for _ in 0..count {
                        ages.push((c.u64()?, c.u64()?));
                    }
                    ages
                } else {
                    Vec::new()
                };
                if tail
                    && ms.is_empty()
                    && votes_seen == 0
                    && votes_needed == 0
                    && !no_quorum
                    && ack_ages.is_empty()
                {
                    return Err(WireError::BadField {
                        opcode: op,
                        what: "redundant quorum tail",
                    });
                }
                ReplMsg::StatusResp(ReplStatus {
                    role,
                    applied_seq,
                    term,
                    peers,
                    members: ms,
                    votes_seen,
                    votes_needed,
                    no_quorum,
                    ack_ages,
                })
            }
            opcode::REPL_DENY => ReplMsg::Deny {
                reason: c.str("deny reason")?,
            },
            other => return Err(WireError::BadOpcode { got: other }),
        };
        c.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut bytes = Vec::new();
        req.encode(&mut bytes, 7).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let frame = dec.next_frame().unwrap().expect("one frame");
        assert_eq!(frame.request_id, 7);
        assert_eq!(Request::from_frame(&frame).unwrap(), req);
        assert!(dec.next_frame().unwrap().is_none());
    }

    fn roundtrip_response(resp: Response) {
        let mut bytes = Vec::new();
        resp.encode(&mut bytes, 99).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let frame = dec.next_frame().unwrap().expect("one frame");
        assert_eq!(frame.request_id, 99);
        assert_eq!(Response::from_frame(&frame).unwrap(), resp);
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::QueryBatch(vec![
            Query::SameCluster(0, u32::MAX),
            Query::ClusterOf(17),
            Query::ClusterSize(3),
        ]));
        roundtrip_request(Request::QueryBatch(Vec::new()));
        let mut d = GraphDelta::new();
        d.add_nodes(2).add_edge(0, 9).remove_edge(4, 5);
        roundtrip_request(Request::SubmitDelta(d));
        roundtrip_request(Request::CacheStats);
        roundtrip_request(Request::Info);
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::ReplVote {
            candidate_id: 9,
            candidate_seq: u64::MAX,
            term: 3,
        });
        roundtrip_request(Request::WalPull { after_seq: 41 });
        roundtrip_request(Request::Stats { max_events: 64 });
        roundtrip_request(Request::Stats { max_events: 0 });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Answers(vec![
            Answer::Bool(true),
            Answer::Bool(false),
            Answer::Label(42),
            Answer::Size(1000),
        ]));
        roundtrip_response(Response::DeltaDone(DeltaSummary {
            n: 1,
            m: 2,
            refreshed: 3,
            invalidated: 4,
            warm_rounds: 5,
            unconverged: 0,
        }));
        roundtrip_response(Response::CacheStats(CacheStats {
            hits: 10,
            misses: 2,
            ..Default::default()
        }));
        roundtrip_response(Response::Info(ServerInfo {
            dataset: "ring-3x8".to_string(),
            n: 24,
            m: 87,
            k: 3,
            applied_seq: 12,
            role: Role::Follower,
            no_quorum: true,
            votes_seen: 1,
            votes_needed: 2,
            member_count: 3,
            repl_addr: "127.0.0.1:7311".to_string(),
            term: 2,
        }));
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Vote(VoteResp {
            granted: true,
            voter_id: 3,
            voter_seq: 17,
            voter_role: Role::Follower,
            term: 4,
        }));
        roundtrip_response(Response::WalSuffix {
            records: vec![b"LWAL....rec one".to_vec(), Vec::new(), vec![0xFF; 300]],
        });
        roundtrip_response(Response::WalSuffix {
            records: Vec::new(),
        });
        roundtrip_response(Response::Error {
            code: 2,
            message: "node 99 out of range".to_string(),
        });
    }

    #[test]
    fn info_without_tail_decodes_with_defaults() {
        // A pre-replication server's Info payload stops at the dataset
        // name. New clients must decode it, not reject it.
        let mut payload = Vec::new();
        payload.extend_from_slice(&24u64.to_le_bytes());
        payload.extend_from_slice(&87u64.to_le_bytes());
        payload.extend_from_slice(&3u32.to_le_bytes());
        payload.extend_from_slice(&4u16.to_le_bytes());
        payload.extend_from_slice(b"ring");
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::INFO_RESP, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        let info = match Response::from_frame(&f).unwrap() {
            Response::Info(i) => i,
            other => panic!("expected Info, got {other:?}"),
        };
        assert_eq!(info.dataset, "ring");
        assert_eq!(info.applied_seq, 0);
        assert_eq!(info.role, Role::Primary);
    }

    #[test]
    fn info_with_longer_future_tail_still_decodes() {
        // A future server appends fields after role inside the tail;
        // this build must skip them, not error.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&2u64.to_le_bytes());
        payload.extend_from_slice(&3u32.to_le_bytes());
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.push(b'x');
        let mut tail = Vec::new();
        tail.extend_from_slice(&42u64.to_le_bytes());
        tail.push(Role::Promoted as u8);
        tail.push(1); // no_quorum
        tail.extend_from_slice(&3u16.to_le_bytes()); // votes_seen
        tail.extend_from_slice(&4u16.to_le_bytes()); // votes_needed
        tail.extend_from_slice(&5u16.to_le_bytes()); // member_count
        tail.extend_from_slice(b"future fields");
        payload.extend_from_slice(&(tail.len() as u16).to_le_bytes());
        payload.extend_from_slice(&tail);
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::INFO_RESP, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        let info = match Response::from_frame(&f).unwrap() {
            Response::Info(i) => i,
            other => panic!("expected Info, got {other:?}"),
        };
        assert_eq!(info.applied_seq, 42);
        assert_eq!(info.role, Role::Promoted);
        assert!(info.no_quorum);
        assert_eq!(info.votes_seen, 3);
        assert_eq!(info.votes_needed, 4);
        assert_eq!(info.member_count, 5);
    }

    #[test]
    fn info_with_pre_quorum_9_byte_tail_decodes_with_quorum_defaults() {
        // A PR-6 era server sends only applied_seq + role in the tail;
        // the quorum fields must default, not error.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&2u64.to_le_bytes());
        payload.extend_from_slice(&3u32.to_le_bytes());
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.push(b'x');
        let mut tail = Vec::new();
        tail.extend_from_slice(&7u64.to_le_bytes());
        tail.push(Role::Follower as u8);
        payload.extend_from_slice(&(tail.len() as u16).to_le_bytes());
        payload.extend_from_slice(&tail);
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::INFO_RESP, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        let info = match Response::from_frame(&f).unwrap() {
            Response::Info(i) => i,
            other => panic!("expected Info, got {other:?}"),
        };
        assert_eq!(info.applied_seq, 7);
        assert_eq!(info.role, Role::Follower);
        assert!(!info.no_quorum);
        assert_eq!(
            (info.votes_seen, info.votes_needed, info.member_count),
            (0, 0, 0)
        );
    }

    #[test]
    fn pre_quorum_hello_and_heartbeat_decode_with_empty_members() {
        // Hello/Heartbeat payloads that end before the membership
        // block decode with an empty list rather than erroring.
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u64.to_le_bytes());
        payload.extend_from_slice(&17u64.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes()); // term
        put_str(&mut payload, "10.0.0.7:7070");
        put_str(&mut payload, "");
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::REPL_HELLO, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        match ReplMsg::from_frame(&f).unwrap() {
            ReplMsg::Hello { members, .. } => assert!(members.is_empty()),
            other => panic!("expected Hello, got {other:?}"),
        }

        let mut payload = Vec::new();
        payload.extend_from_slice(&5u64.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes()); // term
        payload.extend_from_slice(&0u32.to_le_bytes()); // empty roster
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::HEARTBEAT, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        match ReplMsg::from_frame(&f).unwrap() {
            ReplMsg::Heartbeat { members, .. } => assert!(members.is_empty()),
            other => panic!("expected Heartbeat, got {other:?}"),
        }
    }

    #[test]
    fn hostile_member_count_does_not_overallocate() {
        // Hello with a membership block claiming u32::MAX entries but
        // no bytes behind it: must error, not OOM.
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u64.to_le_bytes());
        payload.extend_from_slice(&17u64.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes()); // term
        put_str(&mut payload, "a:1");
        put_str(&mut payload, "");
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::REPL_HELLO, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        assert!(matches!(
            ReplMsg::from_frame(&f),
            Err(WireError::BadField { .. })
        ));
    }

    #[test]
    fn hostile_wal_suffix_count_does_not_overallocate() {
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::WAL_SUFFIX, 0, &u32::MAX.to_le_bytes()).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        assert!(matches!(
            Response::from_frame(&f),
            Err(WireError::BadField { .. })
        ));
    }

    fn roundtrip_repl(msg: ReplMsg) {
        let mut bytes = Vec::new();
        msg.encode(&mut bytes, 11).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let frame = dec.next_frame().unwrap().expect("one frame");
        assert_eq!(frame.request_id, 11);
        assert_eq!(ReplMsg::from_frame(&frame).unwrap(), msg);
    }

    #[test]
    fn repl_roundtrips() {
        roundtrip_repl(ReplMsg::Hello {
            follower_id: 3,
            have_seq: 17,
            term: 0,
            addr: "10.0.0.7:7070".to_string(),
            repl_addr: String::new(),
            members: Vec::new(),
        });
        roundtrip_repl(ReplMsg::Hello {
            follower_id: 3,
            have_seq: 17,
            term: 6,
            addr: "10.0.0.7:7070".to_string(),
            repl_addr: "10.0.0.7:7071".to_string(),
            members: vec![
                Member {
                    id: 1,
                    addr: "10.0.0.5:7070".to_string(),
                },
                Member {
                    id: 3,
                    addr: "10.0.0.7:7070".to_string(),
                },
            ],
        });
        roundtrip_repl(ReplMsg::Ack { applied_seq: 42 });
        roundtrip_repl(ReplMsg::Status);
        roundtrip_repl(ReplMsg::SnapBegin {
            applied_seq: 9,
            total_len: 1 << 20,
            chunk_count: 4,
        });
        roundtrip_repl(ReplMsg::SnapChunk {
            offset: 256 * 1024,
            bytes: vec![0xAB; 1000],
        });
        roundtrip_repl(ReplMsg::SnapChunk {
            offset: 0,
            bytes: Vec::new(),
        });
        roundtrip_repl(ReplMsg::SnapEnd { crc64: u64::MAX });
        roundtrip_repl(ReplMsg::WalRec {
            term: 9,
            bytes: b"LWAL....record bytes".to_vec(),
        });
        roundtrip_repl(ReplMsg::Heartbeat {
            epoch: 5,
            term: 2,
            roster: vec![
                PeerLag {
                    follower_id: 1,
                    applied_seq: 40,
                    addr: "127.0.0.1:9001".to_string(),
                    repl_addr: "127.0.0.1:9101".to_string(),
                },
                PeerLag {
                    follower_id: 2,
                    applied_seq: 42,
                    addr: String::new(),
                    repl_addr: String::new(),
                },
            ],
            members: vec![Member {
                id: 2,
                addr: "127.0.0.1:9002".to_string(),
            }],
        });
        roundtrip_repl(ReplMsg::StatusResp(ReplStatus {
            role: Role::Promoted,
            applied_seq: 42,
            term: 3,
            peers: Vec::new(),
            members: Vec::new(),
            votes_seen: 0,
            votes_needed: 0,
            no_quorum: false,
            ack_ages: Vec::new(),
        }));
        roundtrip_repl(ReplMsg::StatusResp(ReplStatus {
            role: Role::Follower,
            applied_seq: 42,
            term: 0,
            peers: Vec::new(),
            members: vec![
                Member {
                    id: 1,
                    addr: "a:1".to_string(),
                },
                Member {
                    id: 2,
                    addr: "b:2".to_string(),
                },
                Member {
                    id: 3,
                    addr: "c:3".to_string(),
                },
            ],
            votes_seen: 1,
            votes_needed: 2,
            no_quorum: true,
            ack_ages: Vec::new(),
        }));
        // Ack ages alone force the quorum tail (with defaults) and
        // still round-trip.
        roundtrip_repl(ReplMsg::StatusResp(ReplStatus {
            role: Role::Primary,
            applied_seq: 99,
            term: 7,
            peers: vec![PeerLag {
                follower_id: 2,
                applied_seq: 97,
                addr: "127.0.0.1:9002".to_string(),
                repl_addr: String::new(),
            }],
            members: Vec::new(),
            votes_seen: 0,
            votes_needed: 0,
            no_quorum: false,
            ack_ages: vec![(2, 1375), (5, 0)],
        }));
        roundtrip_repl(ReplMsg::Deny {
            reason: "follower id 7 already connected".to_string(),
        });
    }

    #[test]
    fn stats_snapshot_roundtrips() {
        roundtrip_response(Response::Stats(ObsSnapshot::default()));
        let obs = lbc_obs::Obs::new();
        obs.counter("net_frames_in_total").add(12345);
        obs.counter("net_accepts_total").inc();
        obs.gauge("worker_queue_depth").set(-3);
        let h = obs.histogram("rpc_service_ns");
        for v in [1u64, 31, 32, 1000, 1_000_000, u64::MAX] {
            h.record(v);
        }
        obs.events
            .record(EventKind::RoleChange, "follower->promoted");
        obs.events.record(EventKind::BackpressureOn, "");
        let snap = obs.snapshot(16);
        roundtrip_response(Response::Stats(snap));
    }

    #[test]
    fn hostile_stats_counts_do_not_overallocate() {
        // Each section count is independently hostile-guarded: a
        // u32::MAX count with no bytes behind it must error, not OOM.
        for sections_before in 0..4usize {
            let mut payload = Vec::new();
            for _ in 0..sections_before {
                payload.extend_from_slice(&0u32.to_le_bytes());
            }
            payload.extend_from_slice(&u32::MAX.to_le_bytes());
            let mut bytes = Vec::new();
            encode_frame(&mut bytes, opcode::STATS_RESP, 0, &payload).unwrap();
            let mut dec = FrameDecoder::new();
            dec.push(&bytes);
            let f = dec.next_frame().unwrap().unwrap();
            assert!(matches!(
                Response::from_frame(&f),
                Err(WireError::BadField { .. })
            ));
        }
    }

    fn stats_payload_with_bucket(idx: u32) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u32.to_le_bytes()); // counters
        payload.extend_from_slice(&0u32.to_le_bytes()); // gauges
        payload.extend_from_slice(&1u32.to_le_bytes()); // one histogram
        put_str(&mut payload, "h");
        for v in [1u64, 5, 5, 5] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        payload.extend_from_slice(&1u32.to_le_bytes()); // one bucket
        payload.extend_from_slice(&idx.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes()); // events
        payload
    }

    #[test]
    fn hostile_bucket_index_is_typed_not_a_panic() {
        // An out-of-table bucket index would shift-overflow inside
        // `HistSnapshot::quantile`; the decoder must refuse it.
        for idx in [HIST_BUCKETS as u32, u32::MAX] {
            let mut bytes = Vec::new();
            encode_frame(
                &mut bytes,
                opcode::STATS_RESP,
                0,
                &stats_payload_with_bucket(idx),
            )
            .unwrap();
            let mut dec = FrameDecoder::new();
            dec.push(&bytes);
            let f = dec.next_frame().unwrap().unwrap();
            assert!(matches!(
                Response::from_frame(&f),
                Err(WireError::BadField { .. })
            ));
        }
        // The last valid index still decodes.
        let mut bytes = Vec::new();
        encode_frame(
            &mut bytes,
            opcode::STATS_RESP,
            0,
            &stats_payload_with_bucket(HIST_BUCKETS as u32 - 1),
        )
        .unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        assert!(Response::from_frame(&f).is_ok());
    }

    #[test]
    fn non_ascending_bucket_indices_are_rejected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        put_str(&mut payload, "h");
        for v in [2u64, 10, 5, 5] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        payload.extend_from_slice(&2u32.to_le_bytes());
        for (idx, cnt) in [(7u32, 1u64), (7u32, 1u64)] {
            payload.extend_from_slice(&idx.to_le_bytes());
            payload.extend_from_slice(&cnt.to_le_bytes());
        }
        payload.extend_from_slice(&0u32.to_le_bytes());
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::STATS_RESP, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        assert!(matches!(
            Response::from_frame(&f),
            Err(WireError::BadField { .. })
        ));
    }

    #[test]
    fn unknown_event_kind_is_typed() {
        let mut payload = Vec::new();
        for _ in 0..3 {
            payload.extend_from_slice(&0u32.to_le_bytes());
        }
        payload.extend_from_slice(&1u32.to_le_bytes()); // one event
        payload.extend_from_slice(&0u64.to_le_bytes()); // seq
        payload.extend_from_slice(&0u64.to_le_bytes()); // at_ms
        payload.push(0); // no such kind
        put_str(&mut payload, "x");
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::STATS_RESP, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        assert!(matches!(
            Response::from_frame(&f),
            Err(WireError::BadField { .. })
        ));
    }

    #[test]
    fn status_resp_quorum_tail_without_ack_tail_decodes_empty_ages() {
        // A pre-observability peer's StatusResp ends at the quorum
        // fields; ack_ages must default to empty, not error.
        let mut payload = Vec::new();
        payload.push(Role::Follower as u8);
        payload.extend_from_slice(&42u64.to_le_bytes());
        payload.extend_from_slice(&3u64.to_le_bytes()); // term
        payload.extend_from_slice(&0u32.to_le_bytes()); // empty roster
        put_members(
            &mut payload,
            &[Member {
                id: 1,
                addr: "a:1".to_string(),
            }],
        );
        payload.extend_from_slice(&1u32.to_le_bytes()); // votes_seen
        payload.extend_from_slice(&2u32.to_le_bytes()); // votes_needed
        payload.push(0); // no_quorum
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::STATUS_RESP, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        match ReplMsg::from_frame(&f).unwrap() {
            ReplMsg::StatusResp(s) => {
                assert!(s.ack_ages.is_empty());
                assert_eq!(s.votes_needed, 2);
            }
            other => panic!("expected StatusResp, got {other:?}"),
        }
    }

    #[test]
    fn hostile_ack_age_count_does_not_overallocate() {
        let mut payload = Vec::new();
        payload.push(Role::Primary as u8);
        payload.extend_from_slice(&42u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes()); // term
        payload.extend_from_slice(&0u32.to_le_bytes()); // empty roster
        payload.extend_from_slice(&0u32.to_le_bytes()); // empty members
        payload.extend_from_slice(&0u32.to_le_bytes()); // votes_seen
        payload.extend_from_slice(&0u32.to_le_bytes()); // votes_needed
        payload.push(0); // no_quorum
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::STATUS_RESP, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        assert!(matches!(
            ReplMsg::from_frame(&f),
            Err(WireError::BadField { .. })
        ));
    }

    #[test]
    fn repl_hostile_roster_count_does_not_overallocate() {
        // seq + term + count = u32::MAX with no entries: must error,
        // not OOM.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes()); // term
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::HEARTBEAT, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        assert!(matches!(
            ReplMsg::from_frame(&f),
            Err(WireError::BadField { .. })
        ));
    }

    #[test]
    fn repl_bad_role_is_typed() {
        let mut payload = Vec::new();
        payload.push(9); // no such role
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::STATUS_RESP, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        assert!(matches!(
            ReplMsg::from_frame(&f),
            Err(WireError::BadField { .. })
        ));
    }

    #[test]
    fn one_byte_chunks_decode_identically() {
        let reqs = vec![
            Request::Ping,
            Request::QueryBatch(vec![Query::ClusterOf(5), Query::SameCluster(1, 2)]),
            Request::CacheStats,
        ];
        let mut bytes = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            r.encode(&mut bytes, i as u64).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut seen = Vec::new();
        for &b in &bytes {
            dec.push(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                seen.push(Request::from_frame(&f).unwrap());
            }
        }
        assert_eq!(seen, reqs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn corrupt_magic_is_typed() {
        let mut bytes = Vec::new();
        Request::Ping.encode(&mut bytes, 0).unwrap();
        bytes[0] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.next_frame(), Err(WireError::BadMagic { .. })));
    }

    #[test]
    fn corrupt_payload_is_checksum_mismatch() {
        let mut bytes = Vec::new();
        Request::QueryBatch(vec![Query::ClusterOf(5)])
            .encode(&mut bytes, 0)
            .unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(
            dec.next_frame(),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        Request::Ping.encode(&mut bytes, 0).unwrap();
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.next_frame(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn truncated_stream_waits_rather_than_errors() {
        let mut bytes = Vec::new();
        Request::QueryBatch(vec![Query::ClusterOf(1)])
            .encode(&mut bytes, 0)
            .unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes[..bytes.len() - 1]);
        assert!(dec.next_frame().unwrap().is_none());
        dec.push(&bytes[bytes.len() - 1..]);
        assert!(dec.next_frame().unwrap().is_some());
    }

    #[test]
    fn trailing_bytes_in_typed_payload_are_rejected() {
        let mut payload = Request::Ping.payload();
        payload.push(0);
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::PING, 0, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        assert!(matches!(
            Request::from_frame(&f),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn hostile_count_does_not_overallocate() {
        // count = u32::MAX with a 4-byte payload: must error, not OOM.
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, opcode::QUERY_BATCH, 0, &u32::MAX.to_le_bytes()).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        assert!(matches!(
            Request::from_frame(&f),
            Err(WireError::BadField { .. })
        ));
    }

    #[test]
    fn decoder_compacts_consumed_prefix() {
        let mut bytes = Vec::new();
        Request::Ping.encode(&mut bytes, 0).unwrap();
        let mut dec = FrameDecoder::new();
        for _ in 0..2000 {
            dec.push(&bytes);
            dec.next_frame().unwrap().unwrap();
        }
        // The dead prefix is reclaimed (at the 4 KiB compaction
        // threshold), not grown without bound: 2000 frames is ~48 KiB
        // of traffic through a buffer that stays under two thresholds.
        assert!(dec.buf.len() <= 8192, "buf grew to {}", dec.buf.len());
    }
}
