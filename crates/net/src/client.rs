//! Blocking client for the `lbc-net` protocol.
//!
//! One request in flight at a time (send, then read frames until the
//! matching request id arrives). The reactor-side machinery is not
//! needed here: a client that wants an answer before asking the next
//! question is exactly a blocking socket. The open-loop load
//! generator, which *does* pipeline, drives raw nonblocking sockets
//! through the [`crate::poll::Poller`] instead (see [`crate::bench`]).

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use lbc_graph::GraphDelta;
use lbc_runtime::{Answer, CacheStats, Query};

use crate::error::NetError;
use crate::wire::{DeltaSummary, FrameDecoder, Request, Response, ServerInfo, VoteResp};

/// Blocking protocol client.
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_id: u64,
    buf: Vec<u8>,
    /// Highest replication term any `Info` answer on this connection
    /// has carried. The server's term is monotonic, so a later answer
    /// reporting a *lower* one means the reply came from a node that
    /// has not seen the current generation — [`NetClient::info`]
    /// rejects it rather than hand a deposed view to the caller.
    seen_term: u64,
}

impl NetClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient::from_stream(stream))
    }

    /// Connect with a timeout (also applied as the read timeout, so a
    /// hung server surfaces as an error instead of a hang).
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(NetClient::from_stream(stream))
    }

    fn from_stream(stream: TcpStream) -> NetClient {
        NetClient {
            stream,
            decoder: FrameDecoder::new(),
            next_id: 0,
            buf: vec![0u8; 64 * 1024],
            seen_term: 0,
        }
    }

    /// Round-trip one request.
    pub fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        use std::io::{Read, Write};
        let id = self.next_id;
        self.next_id += 1;
        let mut out = Vec::new();
        req.encode(&mut out, id)?;
        self.stream.write_all(&out)?;
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                let resp = Response::from_frame(&frame)?;
                if frame.request_id != id {
                    // Stale response from an abandoned earlier call;
                    // skip (request ids are strictly increasing).
                    continue;
                }
                if let Response::Error { code, message } = resp {
                    return Err(NetError::Server { code, message });
                }
                return Ok(resp);
            }
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return Err(NetError::Disconnected);
            }
            self.decoder.push(&self.buf[..n]);
        }
    }

    /// Execute a batch of membership queries (answers in order).
    pub fn query_batch(&mut self, qs: &[Query]) -> Result<Vec<Answer>, NetError> {
        match self.call(&Request::QueryBatch(qs.to_vec()))? {
            Response::Answers(a) => Ok(a),
            other => Err(NetError::UnexpectedResponse {
                opcode: other.opcode(),
            }),
        }
    }

    /// Submit a graph delta; the server re-clusters warm and answers
    /// with the patched shape + warm-round count.
    pub fn submit_delta(&mut self, delta: &GraphDelta) -> Result<DeltaSummary, NetError> {
        match self.call(&Request::SubmitDelta(delta.clone()))? {
            Response::DeltaDone(s) => Ok(s),
            other => Err(NetError::UnexpectedResponse {
                opcode: other.opcode(),
            }),
        }
    }

    /// Fetch the registry's cache counters.
    pub fn cache_stats(&mut self) -> Result<CacheStats, NetError> {
        match self.call(&Request::CacheStats)? {
            Response::CacheStats(s) => Ok(s),
            other => Err(NetError::UnexpectedResponse {
                opcode: other.opcode(),
            }),
        }
    }

    /// Fetch the served dataset's shape. Term-fenced: an answer from a
    /// replication term *below* one already seen on this connection is
    /// a stale view (the node's term is monotonic; only a deposed or
    /// lagging generation reports lower) and is refused as a
    /// [`NetError::StaleTerm`].
    pub fn info(&mut self) -> Result<ServerInfo, NetError> {
        match self.call(&Request::Info)? {
            Response::Info(i) => {
                if i.term < self.seen_term {
                    return Err(NetError::StaleTerm {
                        got: i.term,
                        seen: self.seen_term,
                    });
                }
                self.seen_term = i.term;
                Ok(i)
            }
            other => Err(NetError::UnexpectedResponse {
                opcode: other.opcode(),
            }),
        }
    }

    /// Fetch the node's full metrics registry plus up to `max_events`
    /// recent ring events (the `STATS` opcode, answered inline by the
    /// reactor).
    pub fn stats(&mut self, max_events: u32) -> Result<lbc_obs::ObsSnapshot, NetError> {
        match self.call(&Request::Stats { max_events })? {
            Response::Stats(s) => Ok(s),
            other => Err(NetError::UnexpectedResponse {
                opcode: other.opcode(),
            }),
        }
    }

    /// Ask this node to confirm a promotion candidate (failover
    /// election round; see [`Request::ReplVote`]).
    pub fn repl_vote(
        &mut self,
        candidate_id: u64,
        candidate_seq: u64,
        term: u64,
    ) -> Result<VoteResp, NetError> {
        match self.call(&Request::ReplVote {
            candidate_id,
            candidate_seq,
            term,
        })? {
            Response::Vote(v) => Ok(v),
            other => Err(NetError::UnexpectedResponse {
                opcode: other.opcode(),
            }),
        }
    }

    /// Pull every WAL record with seq > `after_seq` this node retains
    /// (promotion-time reconciliation; see [`Request::WalPull`]).
    /// Returns encoded records in seq order; empty when the node holds
    /// nothing newer or cannot serve the suffix contiguously.
    pub fn wal_pull(&mut self, after_seq: u64) -> Result<Vec<Vec<u8>>, NetError> {
        match self.call(&Request::WalPull { after_seq })? {
            Response::WalSuffix { records } => Ok(records),
            other => Err(NetError::UnexpectedResponse {
                opcode: other.opcode(),
            }),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(NetError::UnexpectedResponse {
                opcode: other.opcode(),
            }),
        }
    }
}
