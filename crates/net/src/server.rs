//! Single-threaded reactor serving many connections over one epoll.
//!
//! One thread owns every connection. Each connection carries a
//! [`FrameDecoder`] inbox and a cursor-tracked outbox; the reactor
//! multiplexes them through [`Poller`] readiness events:
//!
//! * **Reads** drain the socket into the decoder and process complete
//!   frames. Query batches are answered inline — they are lock-free
//!   microsecond reads against the resident [`ClusterHandle`], so
//!   bouncing them through a thread pool would only add latency.
//! * **Writes** drain the outbox; write interest is registered only
//!   while bytes are pending (interest re-registration keeps the hot
//!   path to one `epoll_ctl` per transition, not per event).
//! * **Backpressure**: when a connection's outbox exceeds
//!   [`ServerConfig::outbox_cap`], the reactor *stops reading from
//!   that connection* (drops its read interest). New requests stay in
//!   the kernel's receive buffer, TCP flow control pushes back on the
//!   client, and — crucially — the outbox never grows past
//!   `cap + one response`, so a client that never reads cannot balloon
//!   server memory or stall anyone else. Reading resumes once the
//!   outbox drains below half the cap.
//! * **Deltas** are the expensive operation (warm re-clustering), so
//!   they run on the [`WorkerPool`] via
//!   [`lbc_runtime::WorkerPool::submit_task`]: the reactor keeps
//!   serving queries against the old clustering, the pool closure
//!   pushes its result onto a completion queue and rings the
//!   [`Waker`], and the reactor swaps in the refreshed handle when it
//!   drains completions. Submissions are applied strictly in arrival
//!   order (one in flight, the rest queued).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lbc_core::LbConfig;
use lbc_graph::GraphDelta;
use lbc_obs::{Counter, EventKind, Gauge, Histogram, Obs};
use lbc_runtime::{ClusterHandle, DeltaPolicy, QueryEngine, Registry, WorkerPool};

use crate::error::{ErrorCode, NetError, WireError};
use crate::poll::{waker_pair, Event, Interest, Poller, Token, WakeReceiver, Waker};
use crate::wire::{DeltaSummary, FrameDecoder, Request, Response, Role, ServerInfo, WriteBuf};

const TOKEN_LISTENER: Token = Token(0);
const TOKEN_WAKER: Token = Token(1);
const FIRST_CONN_TOKEN: u64 = 2;

/// Reactor tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Soft bound on a connection's pending response bytes; crossing
    /// it pauses reads from that connection until the outbox drains
    /// below half. Hard memory bound per connection is
    /// `outbox_cap + one maximal response frame`.
    pub outbox_cap: usize,
    /// Connections beyond this are accepted and immediately closed.
    pub max_conns: usize,
    /// Read syscall granularity.
    pub read_chunk: usize,
    /// Per-frame payload cap handed to each connection's decoder.
    pub max_payload: u32,
    /// Largest node count a single delta may add. Edge counts are
    /// naturally payload-proportional (8 bytes each), but the node
    /// count is a bare integer — without this cap a 40-byte frame
    /// could demand a multi-GB allocation in `Graph::apply_delta`.
    pub max_delta_nodes: usize,
    /// Deltas queued behind the in-flight one before further
    /// submissions are answered with a typed `Busy` error. Delta
    /// requests produce no outbox bytes until they complete, so the
    /// outbox-based backpressure alone would not bound this queue.
    pub max_pending_deltas: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            outbox_cap: 256 * 1024,
            max_conns: 1024,
            read_chunk: 64 * 1024,
            max_payload: crate::wire::DEFAULT_MAX_PAYLOAD,
            max_delta_nodes: 1 << 20,
            max_pending_deltas: 64,
        }
    }
}

/// What the reactor serves: a registry, the pool for expensive work,
/// the dataset/config to serve, and the node's observability registry
/// (metrics + event ring — one per serving node, shared with the repl
/// plane and store so a single `STATS` answer covers everything).
#[derive(Clone)]
pub struct ServeContext {
    pub registry: Arc<Registry>,
    pub pool: Arc<WorkerPool>,
    pub dataset: String,
    pub cfg: LbConfig,
    pub obs: Arc<Obs>,
}

impl ServeContext {
    /// Context with a fresh per-node [`Obs`]. Callers that thread one
    /// `Obs` through several components (registry, store, repl) build
    /// the struct directly instead.
    pub fn new(
        registry: Arc<Registry>,
        pool: Arc<WorkerPool>,
        dataset: impl Into<String>,
        cfg: LbConfig,
    ) -> ServeContext {
        ServeContext {
            registry,
            pool,
            dataset: dataset.into(),
            cfg,
            obs: Arc::new(Obs::new()),
        }
    }
}

/// Durability hook for a granted `(term, voted_for)` pair — see
/// [`ReplGate::set_vote_persist`].
pub type VotePersistFn = Box<dyn Fn(u64, u64) + Send + Sync>;

/// `--ack-quorum` write-path hook: blocks until the WAL record carrying
/// the given seq is acked by a majority, returning false on timeout —
/// see [`ReplGate::set_ack_waiter`].
pub type AckWaiterFn = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// Replication role shared between the reactor and the replication
/// subsystem. A follower's repl thread flips this to [`Role::Promoted`]
/// on failover; the reactor reads it per request, so the very next
/// `SubmitDelta` after promotion is accepted without any restart.
///
/// The gate also carries the node's failover identity: its id and how
/// recently its primary link delivered a message. Both feed the
/// reactor's [`Request::ReplVote`] handler — a follower only concedes
/// an election once its own primary has been silent past the liveness
/// window, so a candidate that merely lost *its* link cannot steal
/// promotion from a cluster whose primary is alive.
pub struct ReplGate {
    role: AtomicU8,
    node_id: u64,
    last_primary_contact: Mutex<Option<Instant>>,
    liveness_window: Mutex<Duration>,
    /// Whether this node is configured to serve replication if it wins
    /// an election (`--repl-listen`). A voter that cannot itself
    /// promote concedes to any eligible candidate — otherwise a
    /// higher-seq but unpromotable node would veto every election.
    promotable: AtomicU8,
    /// Quorum-election observability: votes seen / votes needed in the
    /// most recent round, and whether the node is parked read-only for
    /// lack of a membership majority. Packed for the Info tail and
    /// `lbc repl-status`.
    votes_seen: AtomicU64,
    votes_needed: AtomicU64,
    no_quorum: AtomicU8,
    member_count: AtomicU64,
    /// The replication listener this node advertises (empty when it
    /// cannot be promoted). Served in the Info tail so peers that hold
    /// no roster naming us — a healed minority node, a stepped-down
    /// primary — can still discover where to re-follow.
    repl_addr: Mutex<String>,
    /// The highest replication term this node has observed. The term
    /// is the generation number of the replication plane: every
    /// election proposes one, every Heartbeat/WalRec/Hello/vote frame
    /// carries one, and a frame from a lower term is refused. A
    /// primary that sees a higher term anywhere steps down *before*
    /// the term is recorded, so there is never an instant where this
    /// node is writable under a term it has already seen superseded.
    term: AtomicU64,
    /// Vote memory, keyed by term: the most recent grant. A voter
    /// grants at most **one candidate per term** (re-grants to the
    /// same candidate are idempotent) — without this, two candidates
    /// partitioned from each other could each collect this node's vote
    /// and both assemble a quorum majority. Unlike the time-windowed
    /// memory it replaced, this hold is structural: it never decays
    /// with the clock, and it is persisted through
    /// [`ReplGate::set_vote_persist`] so a voter that crashes and
    /// restarts cannot re-vote in the same term. The one exception to
    /// "one candidate forever" is an *unsealed self-grant* — see
    /// [`VoteMemory::sealed`].
    voted: Mutex<Option<VoteMemory>>,
    /// Durability hook for `(term, voted_for)` — `u64::MAX` as the
    /// candidate means "term observed, no vote cast". Wired by the
    /// serve loop to `lbc-store` (this crate cannot depend on it);
    /// called under the `voted` lock so persisted state can never
    /// reorder against grants.
    vote_persist: Mutex<Option<VotePersistFn>>,
    /// `--ack-quorum` write-path hook: blocks until a majority of the
    /// electorate has acked the WAL record carrying `seq`, returning
    /// false on timeout. Installed by the primary's replication server
    /// while it holds the write role; absent (always "true") on plain
    /// nodes. Called from pool worker threads, never the reactor.
    ack_waiter: Mutex<Option<AckWaiterFn>>,
    /// Membership adopted from a primary's heartbeat when this node
    /// was started without one — surfaced so the serve loop can adopt
    /// it into its election config and persist it.
    adopted_members: Mutex<(u64, Vec<crate::wire::Member>)>,
    /// Where role/quorum/membership transitions are recorded as
    /// metrics and ring events. Attached by the reactor (and by the
    /// serve loop for gates built before the context); transitions
    /// before attachment are simply unrecorded.
    obs: Mutex<Option<Arc<Obs>>>,
}

/// One recorded vote grant.
#[derive(Debug, Clone, Copy)]
struct VoteMemory {
    term: u64,
    granted_to: u64,
    /// Only meaningful for self-grants (`granted_to == node_id`). A
    /// candidate records its own vote *before* asking anyone, so that
    /// grant is provisional: a rival that beats this node under the
    /// election order may supersede it and take the term — otherwise
    /// two mutual candidates would each self-grant the same term and
    /// wedge it forever, neither able to collect the other's vote. A
    /// won election **seals** the self-grant
    /// ([`ReplGate::seal_self_vote`]); sealing and supersession
    /// exclude each other under the `voted` lock, so at most one
    /// candidate ever commits a win at a given term.
    sealed: bool,
}

impl std::fmt::Debug for ReplGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplGate")
            .field("role", &self.role())
            .field("node_id", &self.node_id)
            .field("term", &self.term.load(Ordering::Acquire))
            .field("voted", &*self.voted.lock().unwrap())
            .finish_non_exhaustive()
    }
}

impl ReplGate {
    pub fn new(role: Role) -> Self {
        ReplGate::with_id(role, 0)
    }

    /// Gate for a node participating in failover elections under
    /// `node_id` (a follower's `--follower-id`).
    ///
    /// A gate constructed as [`Role::Follower`] starts with its
    /// primary contact clock at *boot* rather than "never": the node
    /// was configured to follow a primary that is presumably alive,
    /// and until the stream loop records the first real frame it must
    /// not grant election-confirming votes — otherwise an evicted or
    /// partially partitioned peer could use a just-booted follower's
    /// vote to reach quorum against a living primary.
    pub fn with_id(role: Role, node_id: u64) -> Self {
        ReplGate {
            role: AtomicU8::new(role as u8),
            node_id,
            last_primary_contact: Mutex::new(if role == Role::Follower {
                Some(Instant::now())
            } else {
                None
            }),
            liveness_window: Mutex::new(Duration::from_millis(1500)),
            promotable: AtomicU8::new(1),
            votes_seen: AtomicU64::new(0),
            votes_needed: AtomicU64::new(0),
            no_quorum: AtomicU8::new(0),
            member_count: AtomicU64::new(0),
            repl_addr: Mutex::new(String::new()),
            term: AtomicU64::new(0),
            voted: Mutex::new(None),
            vote_persist: Mutex::new(None),
            ack_waiter: Mutex::new(None),
            adopted_members: Mutex::new((0, Vec::new())),
            obs: Mutex::new(None),
        }
    }

    /// Attach the node's observability registry so gate transitions
    /// land in its counters and event ring.
    pub fn attach_obs(&self, obs: Arc<Obs>) {
        // Pre-register the replication-plane series so an exposition
        // scrape sees them (at their resting values) before the first
        // election or quorum-acked write.
        obs.gauge("repl_term")
            .set(self.term.load(Ordering::Acquire) as i64);
        obs.counter("acks_awaited");
        *self.obs.lock().unwrap() = Some(obs);
    }

    /// The node metrics registry attached via [`ReplGate::attach_obs`],
    /// if any — the seam the replication plane reaches the node's
    /// counters and event ring through.
    pub fn obs(&self) -> Option<Arc<Obs>> {
        self.obs.lock().unwrap().clone()
    }

    fn with_obs(&self, f: impl FnOnce(&Obs)) {
        if let Some(obs) = self.obs.lock().unwrap().as_ref() {
            f(obs);
        }
    }

    /// Advertise the replication listener this node would serve from
    /// once promoted (carried in the Info tail).
    pub fn set_repl_addr(&self, addr: &str) {
        *self.repl_addr.lock().unwrap() = addr.to_string();
    }

    pub fn repl_addr(&self) -> String {
        self.repl_addr.lock().unwrap().clone()
    }

    pub fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::Acquire)).expect("gate stores valid roles")
    }

    pub fn set_role(&self, role: Role) {
        let old = self.role.swap(role as u8, Ordering::AcqRel);
        if old != role as u8 {
            self.with_obs(|obs| {
                obs.counter("repl_role_transitions_total").inc();
                let from = Role::from_u8(old).map(|r| r.as_str()).unwrap_or("?");
                obs.events
                    .record(EventKind::RoleChange, format!("{from}->{}", role.as_str()));
            });
        }
    }

    /// Whether this node currently accepts deltas. Quorum loss
    /// (`no_quorum`) forces read-only even if a stale role flip has
    /// not landed yet — the two stores are updated by different
    /// threads, and refusing writes is the safe order.
    pub fn writable(&self) -> bool {
        self.role() != Role::Follower && self.no_quorum.load(Ordering::Acquire) == 0
    }

    /// This node's failover identity (0 when not participating).
    pub fn node_id(&self) -> u64 {
        self.node_id
    }

    /// Record that the primary link just delivered a message. Called by
    /// the follower's stream loop for every frame received. Vote
    /// memory is deliberately *not* cleared here: grants are keyed by
    /// term, and a live primary's frames carry the current term — a
    /// vote for a higher term must survive primary contact, and a vote
    /// for the current term is voided only by a still-higher proposal.
    pub fn note_primary_contact(&self) {
        *self.last_primary_contact.lock().unwrap() = Some(Instant::now());
    }

    /// Record that the primary link is known dead (EOF/reset), so vote
    /// requests need not wait out the liveness window.
    pub fn note_primary_lost(&self) {
        *self.last_primary_contact.lock().unwrap() = None;
    }

    /// How long votes are refused after primary contact; usually the
    /// replication `heartbeat_timeout`.
    pub fn set_liveness_window(&self, window: Duration) {
        *self.liveness_window.lock().unwrap() = window;
    }

    /// Whether the primary link delivered anything within the liveness
    /// window. `false` when no primary was ever heard from — except
    /// that a gate constructed as a follower counts its boot as
    /// contact (see [`ReplGate::with_id`]), so a node mid-handshake
    /// with a live primary does not hand out votes.
    pub fn primary_recently_alive(&self) -> bool {
        let window = *self.liveness_window.lock().unwrap();
        self.last_primary_contact
            .lock()
            .unwrap()
            .map(|t| t.elapsed() < window)
            .unwrap_or(false)
    }

    /// Declare whether this node could serve replication if promoted.
    /// Defaults to `true`; a `serve` without `--repl-listen` sets it
    /// false so the node's vote never blocks an eligible candidate.
    pub fn set_promotable(&self, promotable: bool) {
        self.promotable.store(promotable as u8, Ordering::Release);
    }

    pub fn promotable(&self) -> bool {
        self.promotable.load(Ordering::Acquire) != 0
    }

    /// The highest replication term this node has observed.
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::Acquire)
    }

    /// Fold a term seen on any frame into this node's view. When it is
    /// higher than the current term, the node is *fenced*: a Primary or
    /// Promoted gate steps down to Follower **before** the new term is
    /// recorded, so no sampler can ever catch this node writable under
    /// a term it already knows is superseded. Returns `true` when the
    /// term advanced. Lower or equal terms are a cheap no-op.
    pub fn observe_term(&self, term: u64) -> bool {
        // Lock-free fast path for the per-frame call sites.
        if term <= self.term.load(Ordering::Acquire) {
            return false;
        }
        // The voted lock doubles as the term-transition lock: persist
        // and gauge updates must not interleave across two racing
        // observers.
        let mut voted = self.voted.lock().unwrap();
        let cur = self.term.load(Ordering::Acquire);
        if term <= cur {
            return false;
        }
        if self.role() != Role::Follower {
            self.set_role(Role::Follower);
            self.with_obs(|obs| {
                obs.events.record(
                    EventKind::RoleChange,
                    format!("fenced: term {cur} superseded by {term}"),
                );
            });
        }
        self.term.store(term, Ordering::Release);
        self.with_obs(|obs| obs.gauge("repl_term").set(term as i64));
        // Record the raise durably even without a vote: a voter that
        // restarts must not fall back to an older term and re-vote in
        // one it already moved past.
        let voted_for = match *voted {
            Some(v) if v.term == term => v.granted_to,
            _ => u64::MAX,
        };
        if let Some(persist) = self.vote_persist.lock().unwrap().as_ref() {
            persist(term, voted_for);
        }
        // Stale self-vote entries are unreachable (grants require
        // term >= current), but clearing keeps the invariant obvious.
        if matches!(*voted, Some(v) if v.term < term) {
            *voted = None;
        }
        true
    }

    /// Atomically record a confirmation-vote grant to `candidate_id`
    /// for `term`. Single-vote-per-**term** semantics: a term below
    /// ours is refused outright, a grant pins `(term, candidate)` and
    /// refuses every other candidate at that term forever (re-grants
    /// to the same candidate are idempotent — each election round
    /// re-asks). Of two candidates racing at the same term, at most
    /// one can count this node's vote toward a majority; a candidate
    /// refused here must re-propose at a *higher* term, where it
    /// competes fresh. The grant is persisted before it is confirmed,
    /// so a voter that crashes and restarts cannot double-vote. Call
    /// only after every other grant condition has passed: a refused
    /// *eligibility* check must not burn the term on a candidate that
    /// was never going to be granted — and because the one exception
    /// below leans on it: an **unsealed self-grant** yields to any
    /// candidate that reached this call, since the caller has already
    /// established the candidate beats this node under the election
    /// order. Without that supersession two mutual candidates would
    /// each self-grant the same term and wedge it forever. A sealed
    /// self-grant ([`ReplGate::seal_self_vote`]) is a *won* term and
    /// immovable.
    pub fn try_grant_vote(&self, term: u64, candidate_id: u64) -> bool {
        if term < self.term.load(Ordering::Acquire) {
            return false;
        }
        // Adopt the candidate's term first (fences us if we were
        // writable under an older one).
        self.observe_term(term);
        let mut voted = self.voted.lock().unwrap();
        if term < self.term.load(Ordering::Acquire) {
            return false; // a higher term raced in
        }
        match voted.as_mut() {
            Some(v) if v.term == term => {
                if v.granted_to == candidate_id {
                    return true;
                }
                let provisional_self =
                    v.granted_to == self.node_id && candidate_id != self.node_id && !v.sealed;
                if !provisional_self {
                    return false;
                }
                v.granted_to = candidate_id;
            }
            _ => {
                *voted = Some(VoteMemory {
                    term,
                    granted_to: candidate_id,
                    sealed: false,
                });
            }
        }
        if let Some(persist) = self.vote_persist.lock().unwrap().as_ref() {
            persist(term, candidate_id);
        }
        true
    }

    /// Commit a won election: atomically verify this gate still holds
    /// the winner's **own** grant at `term` (`self_id` is the id the
    /// election self-voted under, which may differ from the gate's
    /// `node_id` on bare gates) and seal it against supersession.
    /// Returns `false` when a rival superseded the provisional
    /// self-vote mid-round — the caller's win is void (the rival may
    /// have counted this very grant toward its majority) and it must
    /// re-propose at a higher term. Sealing is what makes
    /// one-writer-per-term structural in the presence of supersession:
    /// steal-then-seal and seal-then-steal both leave exactly one
    /// candidate able to commit.
    pub fn seal_self_vote(&self, term: u64, self_id: u64) -> bool {
        let mut voted = self.voted.lock().unwrap();
        match voted.as_mut() {
            Some(v) if v.term == term && v.granted_to == self_id => {
                v.sealed = true;
                true
            }
            _ => false,
        }
    }

    /// Install the durability hook for `(term, voted_for)` pairs —
    /// `u64::MAX` as `voted_for` means "term observed, no vote". The
    /// serve loop points this at `Store::save_vote`.
    pub fn set_vote_persist(&self, persist: VotePersistFn) {
        *self.vote_persist.lock().unwrap() = Some(persist);
    }

    /// Reload persisted term/vote state at boot, before any listener
    /// is live. `voted_for == u64::MAX` seeds the term alone.
    pub fn seed_term_vote(&self, term: u64, voted_for: u64) {
        let mut voted = self.voted.lock().unwrap();
        self.term.fetch_max(term, Ordering::AcqRel);
        if voted_for != u64::MAX {
            // A reloaded self-vote is conservatively sealed: whether
            // the pre-crash process committed a win on it is unknown,
            // and a superseded won term would hand two writers the
            // same generation. Rivals simply propose the next term.
            *voted = Some(VoteMemory {
                term,
                granted_to: voted_for,
                sealed: voted_for == self.node_id,
            });
        }
    }

    /// Install the `--ack-quorum` write-path waiter (primary side).
    pub fn set_ack_waiter(&self, waiter: AckWaiterFn) {
        *self.ack_waiter.lock().unwrap() = Some(waiter);
    }

    /// Remove the ack waiter (primary stepping down or shutting down);
    /// writes stop blocking on the electorate immediately.
    pub fn clear_ack_waiter(&self) {
        *self.ack_waiter.lock().unwrap() = None;
    }

    /// Block until a majority of the electorate acked the WAL record
    /// carrying `seq` (true), or the wait timed out / was aborted
    /// (false). Trivially true when no waiter is installed — plain
    /// nodes and async-replication primaries never block. Runs on pool
    /// worker threads; the waiter is cloned out so the gate lock is
    /// not held across the wait.
    pub fn await_acks(&self, seq: u64) -> bool {
        let waiter = self.ack_waiter.lock().unwrap().clone();
        match waiter {
            Some(w) => {
                self.with_obs(|obs| obs.counter("acks_awaited").inc());
                let start = Instant::now();
                let ok = w(seq);
                self.with_obs(|obs| {
                    obs.histogram("repl_ack_wait_ns")
                        .record(start.elapsed().as_nanos() as u64);
                    if !ok {
                        obs.counter("repl_ack_timeouts_total").inc();
                    }
                });
                ok
            }
            None => true,
        }
    }

    /// Publish a membership list adopted from the primary's heartbeat
    /// (a follower started without `--members`), stamped with the
    /// `term` of the heartbeat that carried it. The serve loop reads
    /// it back via [`ReplGate::adopted_members_at`] to run
    /// re-elections under the quorum rule and persist the list for
    /// restarts — and uses the stamp to refuse persisting a roster
    /// whose source generation has since been deposed.
    pub fn set_adopted_members(&self, members: &[crate::wire::Member], term: u64) {
        let mut cur = self.adopted_members.lock().unwrap();
        if cur.1 == members {
            // Same roster from a newer generation: refresh the stamp
            // so the serve loop keeps treating it as current.
            cur.0 = cur.0.max(term);
            return;
        }
        if !members.is_empty() {
            self.with_obs(|obs| {
                obs.events.record(
                    EventKind::MembershipAdopted,
                    format!("{} members at term {term}", members.len()),
                );
            });
        }
        *cur = (term, members.to_vec());
    }

    /// The membership adopted from heartbeats, if any (empty when none
    /// was adopted — locally configured memberships are never
    /// published here), plus the term of the heartbeat that carried
    /// it. A stamp below the gate's current term means the roster came
    /// from a deposed generation and must not be persisted.
    pub fn adopted_members_at(&self) -> (u64, Vec<crate::wire::Member>) {
        self.adopted_members.lock().unwrap().clone()
    }

    /// The adopted membership without its term stamp.
    pub fn adopted_members(&self) -> Vec<crate::wire::Member> {
        self.adopted_members.lock().unwrap().1.clone()
    }

    /// Record the outcome of the most recent quorum-mode election
    /// round so operators (Info tail, `lbc repl-status`) can see why a
    /// minority partition is read-only.
    pub fn set_quorum_status(&self, votes_seen: u32, votes_needed: u32, no_quorum: bool) {
        self.votes_seen.store(votes_seen as u64, Ordering::Release);
        self.votes_needed
            .store(votes_needed as u64, Ordering::Release);
        let was = self.no_quorum.swap(no_quorum as u8, Ordering::AcqRel);
        if no_quorum && was == 0 {
            self.with_obs(|obs| {
                obs.counter("repl_no_quorum_total").inc();
                obs.events.record(
                    EventKind::NoQuorum,
                    format!("votes {votes_seen}/{votes_needed}"),
                );
            });
        }
    }

    /// Record the size of the fixed membership list this node was
    /// configured with (0 = quorum mode off).
    pub fn set_member_count(&self, count: usize) {
        self.member_count.store(count as u64, Ordering::Release);
    }

    /// `(votes_seen, votes_needed, no_quorum, member_count)` as last
    /// recorded — all zeros/false outside quorum mode.
    pub fn quorum_status(&self) -> (u32, u32, bool, usize) {
        (
            self.votes_seen.load(Ordering::Acquire) as u32,
            self.votes_needed.load(Ordering::Acquire) as u32,
            self.no_quorum.load(Ordering::Acquire) != 0,
            self.member_count.load(Ordering::Acquire) as usize,
        )
    }
}

/// The reactor's counters, registered in the node's [`Obs`] under
/// `net_*` names and shared with [`ServerHandle`] — one set of atomics
/// serves both `ServerHandle::stats()` and the `STATS` opcode.
struct StatsInner {
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
    disconnected: Arc<Counter>,
    active: Arc<Gauge>,
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    deltas_applied: Arc<Counter>,
    backpressure_pauses: Arc<Counter>,
    /// High-water mark of any single connection's outbox, in bytes —
    /// the backpressure test's bounded-memory witness.
    outbox_hwm: Arc<Gauge>,
}

/// Snapshot of the reactor's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub accepted: u64,
    pub rejected: u64,
    pub disconnected: u64,
    pub active: usize,
    pub frames_in: u64,
    pub frames_out: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub protocol_errors: u64,
    pub deltas_applied: u64,
    pub backpressure_pauses: u64,
    pub outbox_hwm: u64,
}

impl StatsInner {
    fn new(obs: &Obs) -> StatsInner {
        StatsInner {
            accepted: obs.counter("net_accepted_total"),
            rejected: obs.counter("net_rejected_total"),
            disconnected: obs.counter("net_disconnected_total"),
            active: obs.gauge("net_active_conns"),
            frames_in: obs.counter("net_frames_in_total"),
            frames_out: obs.counter("net_frames_out_total"),
            bytes_in: obs.counter("net_bytes_in_total"),
            bytes_out: obs.counter("net_bytes_out_total"),
            protocol_errors: obs.counter("net_protocol_errors_total"),
            deltas_applied: obs.counter("net_deltas_applied_total"),
            backpressure_pauses: obs.counter("net_backpressure_pauses_total"),
            outbox_hwm: obs.gauge("net_outbox_hwm_bytes"),
        }
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.get(),
            rejected: self.rejected.get(),
            disconnected: self.disconnected.get(),
            active: self.active.get().max(0) as usize,
            frames_in: self.frames_in.get(),
            frames_out: self.frames_out.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            protocol_errors: self.protocol_errors.get(),
            deltas_applied: self.deltas_applied.get(),
            backpressure_pauses: self.backpressure_pauses.get(),
            outbox_hwm: self.outbox_hwm.get().max(0) as u64,
        }
    }
}

/// Per-request-opcode count + service-time histogram, pre-created so
/// the hot path touches only `Arc`ed atomics (no name lookups).
struct OpMetrics {
    count: Arc<Counter>,
    service_ns: Arc<Histogram>,
}

const OP_NAMES: [&str; 8] = [
    "query_batch",
    "submit_delta",
    "cache_stats",
    "info",
    "ping",
    "repl_vote",
    "wal_pull",
    "stats",
];

fn op_index(req: &Request) -> usize {
    match req {
        Request::QueryBatch(_) => 0,
        Request::SubmitDelta(_) => 1,
        Request::CacheStats => 2,
        Request::Info => 3,
        Request::Ping => 4,
        Request::ReplVote { .. } => 5,
        Request::WalPull { .. } => 6,
        Request::Stats { .. } => 7,
    }
}

/// Reactor-owned metric handles beyond the [`ServerStats`] set:
/// per-opcode service metrics, close-cause counters, and the
/// applied-seq gauge sampled into each `STATS` answer.
struct ReactorObs {
    ops: Vec<OpMetrics>,
    closed_eof: Arc<Counter>,
    closed_reset: Arc<Counter>,
    closed_protocol: Arc<Counter>,
    closed_write: Arc<Counter>,
    closed_oversized: Arc<Counter>,
    applied_seq: Arc<Gauge>,
}

impl ReactorObs {
    fn new(obs: &Obs) -> ReactorObs {
        ReactorObs {
            ops: OP_NAMES
                .iter()
                .map(|n| OpMetrics {
                    count: obs.counter(&format!("rpc_{n}_requests_total")),
                    service_ns: obs.histogram(&format!("rpc_{n}_service_ns")),
                })
                .collect(),
            closed_eof: obs.counter("net_closed_eof_total"),
            closed_reset: obs.counter("net_closed_reset_total"),
            closed_protocol: obs.counter("net_closed_protocol_total"),
            closed_write: obs.counter("net_closed_write_total"),
            closed_oversized: obs.counter("net_closed_oversized_total"),
            applied_seq: obs.gauge("repl_applied_seq"),
        }
    }
}

/// Result of one offloaded delta, delivered through the completion
/// queue + waker (the pool→reactor half of the completion-hook seam).
struct DeltaDone {
    token: u64,
    request_id: u64,
    result: Result<(DeltaSummary, ClusterHandle), (u16, String)>,
    /// Clustering to swap in even when the response is an error. Set
    /// when the delta applied locally but the `--ack-quorum` wait
    /// timed out: the write exists on this node — only its
    /// confirmation failed — so reads must still see it.
    swap_anyway: Option<ClusterHandle>,
}

/// Work delivered to the reactor through the completion queue: its own
/// delta completions, plus handle swaps injected from outside (a
/// replication follower's apply thread after each streamed record).
enum Completion {
    Delta(DeltaDone),
    Swap(ClusterHandle),
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbox: WriteBuf,
    interest: Interest,
    /// Read interest withheld because the outbox crossed the cap.
    paused: bool,
}

/// Running server: address, stats, and shutdown control. Dropping the
/// handle shuts the reactor down.
pub struct ServerHandle {
    addr: SocketAddr,
    stats: Arc<StatsInner>,
    stop: Arc<AtomicBool>,
    waker: Waker,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Actual bound address (resolves `--listen 127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Swap the clustering the reactor serves. Used by a replication
    /// follower: its repl thread applies each streamed WAL record
    /// through the registry, then installs the refreshed handle here so
    /// in-flight reads keep the old state and the next batch sees the
    /// new one — the same swap discipline delta completions use.
    pub fn install_handle(&self, handle: ClusterHandle) {
        self.completions
            .lock()
            .unwrap()
            .push_back(Completion::Swap(handle));
        self.waker.wake();
    }

    /// Ask the reactor to exit and wait for it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until the reactor exits on its own (it doesn't, absent
    /// shutdown — this is how `lbc serve` parks its main thread).
    pub fn join(mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The serving reactor. Construct with [`NetServer::bind`], which
/// clusters the dataset (on the pool), binds the listener, and spawns
/// the reactor thread.
pub struct NetServer;

impl NetServer {
    /// Cluster `ctx.dataset` (cache hit if already resident), bind
    /// `addr`, and spawn the reactor thread as a standalone primary.
    pub fn bind(
        addr: &str,
        ctx: ServeContext,
        config: ServerConfig,
    ) -> Result<ServerHandle, NetError> {
        NetServer::bind_with_repl(addr, ctx, config, Arc::new(ReplGate::new(Role::Primary)))
    }

    /// Like [`NetServer::bind`], with an explicit replication gate —
    /// a follower passes `Role::Follower` so deltas bounce with a typed
    /// `ReadOnly` error until its repl thread promotes the gate.
    pub fn bind_with_repl(
        addr: &str,
        ctx: ServeContext,
        config: ServerConfig,
        repl: Arc<ReplGate>,
    ) -> Result<ServerHandle, NetError> {
        NetServer::serve_listener(TcpListener::bind(addr)?, ctx, config, repl)
    }

    /// Like [`NetServer::bind_with_repl`] but adopting a listener the
    /// caller already bound — a follower binds its query port before
    /// the replication handshake so the address it advertises in
    /// `Hello` (where peers poll and vote during failover) is live
    /// from the first heartbeat.
    pub fn serve_listener(
        listener: TcpListener,
        ctx: ServeContext,
        config: ServerConfig,
        repl: Arc<ReplGate>,
    ) -> Result<ServerHandle, NetError> {
        let engine = QueryEngine::new(Arc::clone(&ctx.registry));
        let handle = engine
            .handle_via_pool(&ctx.pool, &ctx.dataset, &ctx.cfg)
            .map_err(|e| NetError::InvalidConfig(format!("clustering failed: {e}")))?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;

        let stats = Arc::new(StatsInner::new(&ctx.obs));
        let robs = ReactorObs::new(&ctx.obs);
        // Gate transitions (promotion, quorum loss, adoption) land in
        // the same per-node registry the reactor snapshots for STATS.
        repl.attach_obs(Arc::clone(&ctx.obs));
        let stop = Arc::new(AtomicBool::new(false));
        let (waker, wake_rx) = waker_pair()?;
        let completions = Arc::new(Mutex::new(VecDeque::new()));

        let mut reactor = Reactor {
            listener,
            wake_rx,
            waker: waker.clone(),
            poller: Poller::new()?,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            handle,
            ctx,
            config,
            repl,
            stats: Arc::clone(&stats),
            robs,
            stop: Arc::clone(&stop),
            completions: Arc::clone(&completions),
            pending_deltas: VecDeque::new(),
            delta_inflight: false,
            scratch: Vec::new(),
        };
        reactor.scratch.resize(reactor.config.read_chunk, 0);

        let join = std::thread::Builder::new()
            .name("lbc-net-reactor".to_string())
            .spawn(move || reactor.run())
            .map_err(NetError::Io)?;

        Ok(ServerHandle {
            addr: local,
            stats,
            stop,
            waker,
            completions,
            join: Some(join),
        })
    }
}

struct Reactor {
    listener: TcpListener,
    wake_rx: WakeReceiver,
    waker: Waker,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// The clustering being served; swapped on delta completion.
    handle: ClusterHandle,
    ctx: ServeContext,
    config: ServerConfig,
    repl: Arc<ReplGate>,
    stats: Arc<StatsInner>,
    robs: ReactorObs,
    stop: Arc<AtomicBool>,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    pending_deltas: VecDeque<(u64, u64, GraphDelta)>,
    delta_inflight: bool,
    scratch: Vec<u8>,
}

impl Reactor {
    fn run(&mut self) {
        if let Err(e) = self.event_loop() {
            eprintln!("lbc-net reactor exiting on error: {e}");
        }
    }

    fn event_loop(&mut self) -> io::Result<()> {
        self.poller
            .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        self.poller
            .register(self.wake_rx.fd(), TOKEN_WAKER, Interest::READ)?;
        let mut events: Vec<Event> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            events.clear();
            self.poller
                .wait(&mut events, Some(Duration::from_millis(500)))?;
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready()?,
                    TOKEN_WAKER => {
                        self.wake_rx.drain();
                        self.drain_completions();
                    }
                    Token(t) => self.conn_ready(t, ev),
                }
            }
            // A completion can land between drains; the waker makes the
            // next wait return immediately in that case, so nothing is
            // lost — but drain opportunistically to cut latency.
            self.drain_completions();
        }
        Ok(())
    }

    fn accept_ready(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= self.config.max_conns {
                        self.stats.rejected.inc();
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), Token(token), Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            decoder: FrameDecoder::with_max_payload(self.config.max_payload),
                            outbox: WriteBuf::new(),
                            interest: Interest::READ,
                            paused: false,
                        },
                    );
                    self.stats.accepted.inc();
                    self.stats.active.set(self.conns.len() as i64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: Event) {
        if !self.conns.contains_key(&token) {
            return; // already closed this tick
        }
        let mut close = false;
        if ev.writable {
            close |= !self.flush_conn(token);
        }
        if !close && ev.readable {
            close |= !self.read_conn(token);
        }
        if close {
            self.close_conn(token);
        } else {
            self.update_interest(token);
        }
    }

    /// Read until `WouldBlock`, feeding the decoder and processing
    /// frames (which may pause further reads). Returns false when the
    /// connection must close.
    fn read_conn(&mut self, token: u64) -> bool {
        // Detach the scratch buffer so the connection and the buffer
        // can be borrowed simultaneously.
        let mut scratch = std::mem::take(&mut self.scratch);
        let ok = self.read_conn_inner(token, &mut scratch);
        self.scratch = scratch;
        ok
    }

    fn read_conn_inner(&mut self, token: u64, scratch: &mut [u8]) -> bool {
        loop {
            let conn = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => return true,
            };
            if conn.paused {
                // Backpressured: leave bytes in the kernel buffer.
                return true;
            }
            match conn.stream.read(scratch) {
                Ok(0) => {
                    // Clean EOF.
                    self.robs.closed_eof.inc();
                    return false;
                }
                Ok(n) => {
                    self.stats.bytes_in.add(n as u64);
                    conn.decoder.push(&scratch[..n]);
                    if !self.process_frames(token) {
                        return false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.robs.closed_reset.inc();
                    return false;
                }
            }
        }
    }

    /// Decode and serve complete frames until the inbox runs dry or the
    /// outbox crosses the cap (→ pause). Returns false on a protocol
    /// error (fatal for the connection).
    fn process_frames(&mut self, token: u64) -> bool {
        loop {
            // Backpressure gate: stop *processing* (and reading) while
            // the client is not draining responses.
            let outbox_len = match self.conns.get(&token) {
                Some(c) => c.outbox.pending(),
                None => return true,
            };
            if outbox_len >= self.config.outbox_cap {
                let conn = self.conns.get_mut(&token).unwrap();
                if !conn.paused {
                    conn.paused = true;
                    self.stats.backpressure_pauses.inc();
                    self.ctx.obs.events.record(
                        EventKind::BackpressureOn,
                        format!("conn {token} outbox {outbox_len}B"),
                    );
                }
                return true;
            }
            let frame = match self.conns.get_mut(&token).unwrap().decoder.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => return true,
                Err(_) => {
                    self.stats.protocol_errors.inc();
                    self.robs.closed_protocol.inc();
                    return false;
                }
            };
            self.stats.frames_in.inc();
            let request_id = frame.request_id;
            match Request::from_frame(&frame) {
                Ok(req) => {
                    let op = op_index(&req);
                    self.robs.ops[op].count.inc();
                    let started = Instant::now();
                    let ok = self.handle_request(token, request_id, req);
                    // Deltas offload to the pool, so their entry here is
                    // enqueue time; the pool's job histogram carries the
                    // apply cost.
                    self.robs.ops[op]
                        .service_ns
                        .record(started.elapsed().as_nanos() as u64);
                    if !ok {
                        return false;
                    }
                }
                Err(WireError::BadOpcode { .. })
                | Err(WireError::Truncated { .. })
                | Err(WireError::TrailingBytes { .. })
                | Err(WireError::BadField { .. }) => {
                    // The frame itself was sound (checksum passed), so
                    // framing is intact: answer with a typed error and
                    // keep the connection.
                    self.stats.protocol_errors.inc();
                    self.enqueue_response(
                        token,
                        request_id,
                        &Response::Error {
                            code: ErrorCode::BadRequest as u16,
                            message: "malformed request payload".to_string(),
                        },
                    );
                }
                Err(_) => {
                    self.stats.protocol_errors.inc();
                    self.robs.closed_protocol.inc();
                    return false;
                }
            }
        }
    }

    /// Serve one request. Returns false only when the connection must
    /// close.
    fn handle_request(&mut self, token: u64, request_id: u64, req: Request) -> bool {
        let resp = match req {
            Request::QueryBatch(qs) => match self.handle.execute_batch(&qs) {
                Ok(answers) => Response::Answers(answers),
                Err(e) => Response::Error {
                    code: ErrorCode::QueryFailed as u16,
                    message: e.to_string(),
                },
            },
            Request::SubmitDelta(delta) => {
                if !self.repl.writable() {
                    let resp = Response::Error {
                        code: ErrorCode::ReadOnly as u16,
                        message: "read-only replication follower; submit deltas to the primary"
                            .to_string(),
                    };
                    self.enqueue_response(token, request_id, &resp);
                    return true;
                }
                if delta.added_nodes() > self.config.max_delta_nodes {
                    // The wire format bounds edge lists by payload
                    // size, but the node count is a bare integer: cap
                    // it here before it reaches Graph::apply_delta's
                    // allocations.
                    let resp = Response::Error {
                        code: ErrorCode::BadRequest as u16,
                        message: format!(
                            "delta adds {} nodes, limit is {}",
                            delta.added_nodes(),
                            self.config.max_delta_nodes
                        ),
                    };
                    self.enqueue_response(token, request_id, &resp);
                    return true;
                }
                if self.delta_inflight
                    && self.pending_deltas.len() >= self.config.max_pending_deltas
                {
                    let resp = Response::Error {
                        code: ErrorCode::Busy as u16,
                        message: format!(
                            "{} deltas already queued; retry later",
                            self.pending_deltas.len()
                        ),
                    };
                    self.enqueue_response(token, request_id, &resp);
                    return true;
                }
                self.pending_deltas.push_back((token, request_id, delta));
                self.submit_next_delta();
                return true; // response arrives via completion
            }
            Request::CacheStats => Response::CacheStats(self.ctx.registry.stats()),
            Request::Info => {
                let (n, m) = match self.ctx.registry.graph(&self.ctx.dataset) {
                    Ok(g) => (g.n() as u64, g.m() as u64),
                    Err(_) => (self.handle.n() as u64, 0),
                };
                let (votes_seen, votes_needed, no_quorum, member_count) = self.repl.quorum_status();
                Response::Info(ServerInfo {
                    dataset: self.ctx.dataset.clone(),
                    n,
                    m,
                    k: self.handle.k() as u32,
                    applied_seq: self.ctx.registry.applied_seq(&self.ctx.dataset),
                    role: self.repl.role(),
                    no_quorum,
                    votes_seen: votes_seen.min(u16::MAX as u32) as u16,
                    votes_needed: votes_needed.min(u16::MAX as u32) as u16,
                    member_count: member_count.min(u16::MAX as usize) as u16,
                    repl_addr: self.repl.repl_addr(),
                    term: self.repl.term(),
                })
            }
            Request::Ping => Response::Pong,
            Request::WalPull { after_seq } => Response::WalSuffix {
                records: self
                    .ctx
                    .registry
                    .wal_suffix_after(&self.ctx.dataset, after_seq),
            },
            Request::ReplVote {
                candidate_id,
                candidate_seq,
                term,
            } => {
                let voter_id = self.repl.node_id();
                let voter_seq = self.ctx.registry.applied_seq(&self.ctx.dataset);
                // A vote request proposing a term above ours fences
                // this node even when the vote is denied: if we are a
                // deposed primary the candidate just reached, we step
                // down here, the instant the higher term arrives —
                // not at lease expiry. (A *lower*-term request leaves
                // our state untouched; the response's term tells the
                // candidate to re-propose higher.)
                // Followers fold the proposal into their view only via
                // try_grant_vote below — observing it here would
                // persist terms for candidates that fail eligibility.
                let voter_role = self.repl.role();
                if voter_role != Role::Follower {
                    self.repl.observe_term(term);
                }
                // Grant iff: we are still a follower (a primary or an
                // already-promoted node never concedes — though the
                // proposal's term may have just deposed us above), our
                // own primary link has been silent past the liveness
                // window (else the primary is alive and nobody should
                // promote), the candidate beats us under the same
                // deterministic (seq desc, id asc) order we would
                // elect by — so of two mutual candidates exactly one
                // can ever collect the other's vote — and no *other*
                // candidate holds our vote for this term
                // ([`ReplGate::try_grant_vote`]): one grant per term,
                // persisted, structural.
                // A voter that cannot itself promote (no --repl-listen)
                // concedes the order check to any eligible candidate:
                // its seq may be ahead — promotion-time reconciliation
                // pulls that suffix — but its vote must never veto the
                // election. The per-term vote still applies, so an
                // unpromotable voter is not a free double-vote.
                let candidate_beats_us = candidate_seq > voter_seq
                    || (candidate_seq == voter_seq && candidate_id <= voter_id)
                    || !self.repl.promotable();
                let granted = voter_role == Role::Follower
                    && !self.repl.primary_recently_alive()
                    && candidate_beats_us
                    && self.repl.try_grant_vote(term, candidate_id);
                Response::Vote(crate::wire::VoteResp {
                    granted,
                    voter_id,
                    voter_seq,
                    voter_role,
                    term: self.repl.term(),
                })
            }
            Request::Stats { max_events } => {
                // Pull-time gauges are sampled here so a snapshot is
                // self-contained (the registry owns applied_seq; the
                // reactor only reads it per answer).
                self.robs
                    .applied_seq
                    .set(self.ctx.registry.applied_seq(&self.ctx.dataset) as i64);
                Response::Stats(self.ctx.obs.snapshot(max_events as usize))
            }
        };
        self.enqueue_response(token, request_id, &resp);
        true
    }

    /// Launch the oldest queued delta on the pool, if none is in
    /// flight. Strictly serialised: deltas apply in arrival order.
    fn submit_next_delta(&mut self) {
        if self.delta_inflight {
            return;
        }
        let Some((token, request_id, delta)) = self.pending_deltas.pop_front() else {
            return;
        };
        self.delta_inflight = true;
        let registry = Arc::clone(&self.ctx.registry);
        let dataset = self.ctx.dataset.clone();
        let cfg = self.ctx.cfg.clone();
        let completions = Arc::clone(&self.completions);
        let waker = self.waker.clone();
        let repl = Arc::clone(&self.repl);
        self.ctx.pool.submit_task("net-delta", move || {
            // The completion push + wake MUST happen even if the delta
            // machinery panics: the reactor's `delta_inflight` flag is
            // reset only by a completion, so a lost one would wedge
            // every future submission. The pool contains the panic for
            // the worker; this contains it for the protocol.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                registry
                    .apply_delta(
                        &dataset,
                        &delta,
                        &DeltaPolicy::WarmRefresh(Default::default()),
                    )
                    .map_err(|e| e.to_string())
                    .and_then(|rep| {
                        // WarmRefresh keeps the entry resident; a fallback
                        // invalidation re-clusters here so the reactor
                        // always swaps to a handle for the *patched* graph.
                        let out = match registry.cached(&dataset, &cfg) {
                            Some(out) => out,
                            None => registry
                                .get_or_cluster(&dataset, &cfg)
                                .map_err(|e| e.to_string())?,
                        };
                        Ok((
                            DeltaSummary {
                                n: rep.n as u64,
                                m: rep.m as u64,
                                refreshed: rep.refreshed as u64,
                                invalidated: rep.invalidated as u64,
                                warm_rounds: rep.warm_rounds as u64,
                                unconverged: rep.unconverged as u64,
                            },
                            ClusterHandle::new(out),
                        ))
                    })
            }));
            let mut swap_anyway = None;
            let result = match outcome {
                Ok(Ok((summary, handle))) => {
                    // `--ack-quorum`: hold the client's confirmation
                    // until a majority of the electorate acked the WAL
                    // record (trivially true without a waiter). This
                    // blocks a pool worker, never the reactor.
                    let seq = registry.applied_seq(&dataset);
                    if repl.await_acks(seq) {
                        Ok((summary, handle))
                    } else {
                        swap_anyway = Some(handle);
                        Err((
                            ErrorCode::AckTimeout as u16,
                            format!(
                                "delta applied locally at seq {seq} but a majority of the \
                                 electorate did not ack in time; treat it as unconfirmed"
                            ),
                        ))
                    }
                }
                Ok(Err(msg)) => Err((ErrorCode::DeltaFailed as u16, msg)),
                Err(_) => Err((
                    ErrorCode::DeltaFailed as u16,
                    "delta application panicked".to_string(),
                )),
            };
            completions
                .lock()
                .unwrap()
                .push_back(Completion::Delta(DeltaDone {
                    token,
                    request_id,
                    result,
                    swap_anyway,
                }));
            waker.wake();
        });
    }

    /// Apply finished deltas: swap the served handle, answer the
    /// submitter, start the next queued delta. Injected handle swaps
    /// (replication apply) just replace the served clustering.
    fn drain_completions(&mut self) {
        loop {
            let completion = match self.completions.lock().unwrap().pop_front() {
                Some(d) => d,
                None => break,
            };
            let done = match completion {
                Completion::Swap(handle) => {
                    self.handle = handle;
                    continue;
                }
                Completion::Delta(done) => done,
            };
            self.delta_inflight = false;
            if let Some(handle) = done.swap_anyway {
                // Ack-quorum timeout: the write applied here, so reads
                // must serve it even though the submitter gets an
                // error.
                self.handle = handle;
                self.stats.deltas_applied.inc();
            }
            let resp = match done.result {
                Ok((summary, new_handle)) => {
                    self.handle = new_handle;
                    self.stats.deltas_applied.inc();
                    Response::DeltaDone(summary)
                }
                Err((code, message)) => Response::Error { code, message },
            };
            // The submitter may have disconnected meanwhile; fine.
            if self.conns.contains_key(&done.token) {
                self.enqueue_response(done.token, done.request_id, &resp);
                self.update_interest(done.token);
            }
            self.submit_next_delta();
        }
    }

    /// Encode a response into the connection's outbox and try to flush
    /// it immediately (saves an epoll round trip for the common case).
    fn enqueue_response(&mut self, token: u64, request_id: u64, resp: &Response) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if resp.encode(conn.outbox.encode_mut(), request_id).is_err() {
            // Response larger than a frame allows — only conceivable
            // for absurd batch sizes; drop the connection rather than
            // send garbage.
            self.robs.closed_oversized.inc();
            self.close_conn(token);
            return;
        }
        self.stats.frames_out.inc();
        let hwm = self
            .conns
            .get(&token)
            .map(|c| c.outbox.pending())
            .unwrap_or(0) as i64;
        self.stats.outbox_hwm.fetch_max(hwm);
        if !self.flush_conn(token) {
            self.close_conn(token);
        }
    }

    /// Drain the outbox as far as the socket allows; resume reading if
    /// the backlog fell below the low-water mark. Returns false when
    /// the connection must close.
    fn flush_conn(&mut self, token: u64) -> bool {
        loop {
            let conn = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => return true,
            };
            if conn.outbox.is_empty() {
                break;
            }
            match conn.stream.write(conn.outbox.as_slice()) {
                Ok(0) => {
                    self.robs.closed_write.inc();
                    return false;
                }
                Ok(n) => {
                    conn.outbox.advance(n);
                    self.stats.bytes_out.add(n as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.robs.closed_write.inc();
                    return false;
                }
            }
        }
        // Low-water resume: the client started draining again, so
        // process whatever piled up in its decoder and re-open reads.
        let resume = {
            let conn = self.conns.get_mut(&token).unwrap();
            if conn.paused && conn.outbox.pending() < self.config.outbox_cap / 2 {
                conn.paused = false;
                true
            } else {
                false
            }
        };
        if resume {
            self.ctx
                .obs
                .events
                .record(EventKind::BackpressureOff, format!("conn {token}"));
            if !self.process_frames(token) {
                return false;
            }
        }
        true
    }

    /// Reconcile the poller's interest set with the connection state:
    /// read iff not paused, write iff the outbox has bytes.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = Interest {
            readable: !conn.paused,
            writable: !conn.outbox.is_empty(),
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.reregister(fd, Token(token), want).is_ok() {
                conn.interest = want;
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self
                .poller
                .deregister(conn.stream.as_raw_fd(), Token(token));
            self.stats.disconnected.inc();
            self.stats.active.set(self.conns.len() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NetClient;
    use lbc_graph::generators;
    use lbc_runtime::{Answer, Query};

    fn serve_ring() -> (ServerHandle, ClusterHandle, Arc<Registry>) {
        let registry = Arc::new(Registry::with_capacity(4));
        let (g, _) = generators::ring_of_cliques(3, 8, 0).unwrap();
        registry.insert_graph("ring", g);
        let cfg = LbConfig::new(1.0 / 3.0, 60).with_seed(2);
        let pool = Arc::new(WorkerPool::new(2));
        let ctx = ServeContext::new(Arc::clone(&registry), pool, "ring", cfg.clone());
        let handle = NetServer::bind("127.0.0.1:0", ctx, ServerConfig::default()).unwrap();
        let expected = ClusterHandle::new(registry.get_or_cluster("ring", &cfg).unwrap());
        (handle, expected, registry)
    }

    #[test]
    fn serves_query_batches_identical_to_in_process() {
        let (server, expected, _registry) = serve_ring();
        let mut client = NetClient::connect(server.addr()).unwrap();
        let qs = vec![
            Query::SameCluster(0, 1),
            Query::SameCluster(0, 20),
            Query::ClusterOf(5),
            Query::ClusterSize(17),
        ];
        let got = client.query_batch(&qs).unwrap();
        let want = expected.execute_batch(&qs).unwrap();
        assert_eq!(got, want);
        client.ping().unwrap();
        let info = client.info().unwrap();
        assert_eq!(info.dataset, "ring");
        assert_eq!(info.n, expected.n() as u64);
        server.shutdown();
    }

    #[test]
    fn out_of_range_query_is_typed_server_error_not_drop() {
        let (server, expected, _registry) = serve_ring();
        let mut client = NetClient::connect(server.addr()).unwrap();
        let bad = vec![Query::ClusterOf(expected.n() as u32 + 7)];
        match client.query_batch(&bad) {
            Err(NetError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::QueryFailed as u16)
            }
            other => panic!("expected typed server error, got {other:?}"),
        }
        // The connection survives the error.
        let ok = client.query_batch(&[Query::ClusterOf(0)]).unwrap();
        assert_eq!(ok.len(), 1);
        server.shutdown();
    }

    #[test]
    fn delta_submission_recluster_and_swap() {
        let (server, expected, _registry) = serve_ring();
        let mut client = NetClient::connect(server.addr()).unwrap();
        let n0 = client.info().unwrap().n;
        let mut d = GraphDelta::new();
        d.add_nodes(1);
        d.add_edge(0, n0 as u32);
        let summary = client.submit_delta(&d).unwrap();
        assert_eq!(summary.n, n0 + 1);
        assert_eq!(summary.refreshed, 1);
        assert!(summary.warm_rounds > 0);
        // The swapped handle serves the grown graph: the new node is
        // queryable now.
        let a = client.query_batch(&[Query::ClusterOf(n0 as u32)]).unwrap();
        assert!(matches!(a[0], Answer::Label(_)));
        assert_eq!(server.stats().deltas_applied, 1);
        drop(expected);
        server.shutdown();
    }

    #[test]
    fn oversized_delta_node_count_is_rejected_before_allocation() {
        // A ~40-byte frame claiming u32::MAX new nodes must come back
        // as a typed error (not a multi-GB allocation on a worker).
        let (server, _expected, _registry) = serve_ring();
        let mut client = NetClient::connect(server.addr()).unwrap();
        let mut d = GraphDelta::new();
        d.add_nodes(u32::MAX as usize);
        match client.submit_delta(&d) {
            Err(NetError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::BadRequest as u16);
                assert!(message.contains("limit"), "{message}");
            }
            other => panic!("expected typed rejection, got {other:?}"),
        }
        // The connection and server both survive.
        client.ping().unwrap();
        assert_eq!(server.stats().deltas_applied, 0);
        server.shutdown();
    }

    #[test]
    fn delta_queue_is_bounded_with_typed_busy_errors() {
        let registry = Arc::new(Registry::with_capacity(4));
        let (g, _) = lbc_graph::generators::ring_of_cliques(3, 8, 0).unwrap();
        registry.insert_graph("ring", g);
        let cfg = LbConfig::new(1.0 / 3.0, 60).with_seed(2);
        let ctx = ServeContext::new(
            Arc::clone(&registry),
            Arc::new(WorkerPool::new(2)),
            "ring",
            cfg,
        );
        let server = NetServer::bind(
            "127.0.0.1:0",
            ctx,
            ServerConfig {
                max_pending_deltas: 1,
                ..Default::default()
            },
        )
        .unwrap();

        // Pipeline 32 delta submissions in one write burst: with one in
        // flight (each takes ~ms) and a queue of 1, most must bounce
        // with Busy — and every single one must get *some* response.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut burst = Vec::new();
        let total = 32u64;
        for id in 0..total {
            // The empty delta: always valid (identity warm refresh),
            // so every non-bounced submission completes as DeltaDone.
            crate::wire::Request::SubmitDelta(GraphDelta::new())
                .encode(&mut burst, id)
                .unwrap();
        }
        stream.write_all(&burst).unwrap();

        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 4096];
        let mut done = 0u64;
        let mut busy = 0u64;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        while done + busy < total {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "server hung up mid-burst");
            dec.push(&buf[..n]);
            while let Some(f) = dec.next_frame().unwrap() {
                match Response::from_frame(&f).unwrap() {
                    Response::DeltaDone(_) => done += 1,
                    Response::Error { code, .. } => {
                        assert_eq!(code, ErrorCode::Busy as u16);
                        busy += 1;
                    }
                    other => panic!("unexpected response {other:?}"),
                }
            }
        }
        assert!(done >= 1, "no delta ever ran");
        assert!(busy >= 1, "queue never bounced: done = {done}");
        assert_eq!(done + busy, total);
        server.shutdown();
    }

    #[test]
    fn follower_gate_bounces_deltas_until_promoted() {
        let registry = Arc::new(Registry::with_capacity(4));
        let (g, _) = generators::ring_of_cliques(3, 8, 0).unwrap();
        registry.insert_graph("ring", g);
        let cfg = LbConfig::new(1.0 / 3.0, 60).with_seed(2);
        let ctx = ServeContext::new(registry, Arc::new(WorkerPool::new(2)), "ring", cfg);
        let gate = Arc::new(ReplGate::new(Role::Follower));
        let server = NetServer::bind_with_repl(
            "127.0.0.1:0",
            ctx,
            ServerConfig::default(),
            Arc::clone(&gate),
        )
        .unwrap();
        let mut client = NetClient::connect(server.addr()).unwrap();

        // Reads work; writes bounce typed, and the connection survives.
        assert_eq!(client.info().unwrap().role, Role::Follower);
        let mut d = GraphDelta::new();
        d.add_edge(0, 1);
        match client.submit_delta(&d) {
            Err(NetError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::ReadOnly as u16)
            }
            other => panic!("expected typed ReadOnly error, got {other:?}"),
        }
        client.ping().unwrap();

        // Promotion opens the gate without any reconnect or restart.
        gate.set_role(Role::Promoted);
        let summary = client.submit_delta(&GraphDelta::new()).unwrap();
        assert_eq!(summary.refreshed, 1);
        assert_eq!(client.info().unwrap().role, Role::Promoted);
        server.shutdown();
    }

    #[test]
    fn gate_vote_memory_is_one_candidate_per_term() {
        let gate = ReplGate::with_id(Role::Follower, 3);
        // The first candidate takes term 1; a different candidate at
        // the same term is refused; the first re-asks idempotently
        // (every election round re-votes).
        assert!(gate.try_grant_vote(1, 5));
        assert!(!gate.try_grant_vote(1, 7));
        assert!(gate.try_grant_vote(1, 5));
        // Unlike the window-based memory this replaced, the hold is
        // structural: neither primary contact nor the clock voids it.
        gate.note_primary_contact();
        std::thread::sleep(Duration::from_millis(20));
        assert!(!gate.try_grant_vote(1, 7));
        // A refused candidate re-proposes at a higher term and
        // competes fresh; a lower term is dead on arrival.
        assert!(gate.try_grant_vote(2, 7));
        assert_eq!(gate.term(), 2);
        assert!(!gate.try_grant_vote(1, 5));
    }

    #[test]
    fn provisional_self_vote_yields_once_and_seals_forever() {
        // A candidate's own grant is provisional: a rival (the caller
        // has already checked it beats us) takes the term; after that
        // the grant is a normal one and a third candidate is refused.
        let gate = ReplGate::with_id(Role::Follower, 3);
        assert!(gate.try_grant_vote(5, 3));
        assert!(gate.try_grant_vote(5, 1));
        assert!(!gate.try_grant_vote(5, 2));
        assert!(gate.try_grant_vote(5, 1));
        // The superseded owner cannot commit the win it lost.
        assert!(!gate.seal_self_vote(5, 3));

        // A sealed self-vote is a won term: immovable.
        let winner = ReplGate::with_id(Role::Follower, 3);
        assert!(winner.try_grant_vote(5, 3));
        assert!(winner.seal_self_vote(5, 3));
        assert!(!winner.try_grant_vote(5, 1));
        assert!(winner.try_grant_vote(5, 3));

        // A reloaded self-vote is conservatively sealed too — the
        // crash may have eaten the commit.
        let reborn = ReplGate::with_id(Role::Follower, 3);
        reborn.seed_term_vote(5, 3);
        assert!(!reborn.try_grant_vote(5, 1));
        // A reloaded *remote* grant was never a self-vote: still just
        // one candidate per term, no seal involved.
        let voter = ReplGate::with_id(Role::Follower, 3);
        voter.seed_term_vote(5, 9);
        assert!(!voter.try_grant_vote(5, 1));
        assert!(!voter.seal_self_vote(5, 3));
    }

    #[test]
    fn observing_a_higher_term_fences_a_writable_gate() {
        let gate = ReplGate::with_id(Role::Primary, 1);
        assert!(gate.writable());
        // Terms at or below ours leave the role alone.
        assert!(!gate.observe_term(0));
        assert_eq!(gate.role(), Role::Primary);
        // A higher term deposes instantly — no lease, no window.
        assert!(gate.observe_term(3));
        assert_eq!(gate.role(), Role::Follower);
        assert!(!gate.writable());
        assert_eq!(gate.term(), 3);
        // Re-observing the same term is a no-op.
        assert!(!gate.observe_term(3));
    }

    #[test]
    fn seeded_vote_memory_survives_a_simulated_restart() {
        // Boot-time reload of a persisted (term, voted_for) pair: the
        // reborn voter must refuse every other candidate at that term.
        let gate = ReplGate::with_id(Role::Follower, 3);
        gate.seed_term_vote(4, 9);
        assert_eq!(gate.term(), 4);
        assert!(!gate.try_grant_vote(4, 5));
        assert!(gate.try_grant_vote(4, 9));
        // A seeded term with no vote (u64::MAX) still fences lower
        // terms but leaves term 5 open.
        let bare = ReplGate::with_id(Role::Follower, 3);
        bare.seed_term_vote(4, u64::MAX);
        assert!(!bare.try_grant_vote(3, 5));
        assert!(bare.try_grant_vote(4, 5));
    }

    #[test]
    fn follower_gate_counts_boot_as_primary_contact() {
        // A gate constructed to follow denies votes while its node is
        // still mid-handshake: the primary it was configured to follow
        // is presumed alive until a liveness window lapses with no
        // frame. A primary's gate never followed anyone.
        assert!(ReplGate::with_id(Role::Follower, 1).primary_recently_alive());
        assert!(!ReplGate::with_id(Role::Primary, 1).primary_recently_alive());
        let aged = ReplGate::with_id(Role::Follower, 1);
        aged.set_liveness_window(Duration::ZERO);
        assert!(!aged.primary_recently_alive());
    }

    #[test]
    fn vote_handler_grants_one_candidate_per_term() {
        let registry = Arc::new(Registry::with_capacity(4));
        let (g, _) = generators::ring_of_cliques(3, 8, 0).unwrap();
        registry.insert_graph("ring", g);
        let cfg = LbConfig::new(1.0 / 3.0, 60).with_seed(2);
        let ctx = ServeContext::new(registry, Arc::new(WorkerPool::new(2)), "ring", cfg);
        // Constructed as Primary (no boot contact) then stepped to
        // Follower: an orphaned voter free to grant immediately.
        let gate = Arc::new(ReplGate::with_id(Role::Primary, 9));
        gate.set_role(Role::Follower);
        let server = NetServer::bind_with_repl(
            "127.0.0.1:0",
            ctx,
            ServerConfig::default(),
            Arc::clone(&gate),
        )
        .unwrap();
        let mut a = NetClient::connect(server.addr()).unwrap();
        let mut b = NetClient::connect(server.addr()).unwrap();
        // Both candidates beat the voter (seq 5 > 0), but the voter
        // must never count toward two concurrent majorities: the
        // second ask is refused while the first holds the term.
        assert!(a.repl_vote(1, 5, 1).unwrap().granted);
        assert!(!b.repl_vote(2, 5, 1).unwrap().granted);
        assert!(a.repl_vote(1, 5, 1).unwrap().granted);
        // The refusal tells the loser the voter's term; re-proposing
        // one higher competes fresh.
        let v = b.repl_vote(2, 5, 2).unwrap();
        assert!(v.granted);
        assert_eq!(v.term, 2);
        server.shutdown();
    }

    #[test]
    fn garbage_bytes_close_the_connection_but_not_the_server() {
        let (server, _expected, _registry) = serve_ring();
        {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.write_all(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n")
                .unwrap();
            // Server closes on us (EOF or reset) rather than dying.
            let mut buf = [0u8; 64];
            match s.read(&mut buf) {
                Ok(0) | Err(_) => {}
                Ok(n) => panic!("server answered {n} bytes to garbage"),
            }
        }
        // And keeps serving others.
        let mut client = NetClient::connect(server.addr()).unwrap();
        client.ping().unwrap();
        assert!(server.stats().protocol_errors >= 1);
        server.shutdown();
    }

    #[test]
    fn many_connections_one_reactor() {
        let (server, expected, _registry) = serve_ring();
        let qs = vec![Query::SameCluster(1, 2), Query::ClusterSize(0)];
        let want = expected.execute_batch(&qs).unwrap();
        let mut clients: Vec<NetClient> = (0..64)
            .map(|_| NetClient::connect(server.addr()).unwrap())
            .collect();
        for c in &mut clients {
            assert_eq!(c.query_batch(&qs).unwrap(), want);
        }
        assert_eq!(server.stats().accepted, 64);
        assert_eq!(server.stats().active, 64);
        drop(clients);
        server.shutdown();
    }
}
