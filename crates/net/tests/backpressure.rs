//! Slow-client backpressure: a client that floods requests and never
//! reads responses must (a) not stall other connections and (b) not
//! grow the server's per-connection outbox past its bound.
//!
//! Mechanism under test: when a connection's outbox crosses
//! `outbox_cap`, the reactor drops that connection's read interest, so
//! unprocessed requests back up in kernel buffers and TCP flow control
//! throttles the sender — while every other connection keeps its
//! microsecond round trips.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lbc_core::LbConfig;
use lbc_graph::generators;
use lbc_net::{NetClient, NetServer, Request, ServeContext, ServerConfig};
use lbc_runtime::{Query, Registry, WorkerPool};

const OUTBOX_CAP: usize = 8 * 1024;

fn spawn_small_outbox_server() -> lbc_net::ServerHandle {
    let registry = Arc::new(Registry::with_capacity(4));
    let (g, _) = generators::ring_of_cliques(3, 10, 0).unwrap();
    registry.insert_graph("ring", g);
    let ctx = ServeContext::new(
        registry,
        Arc::new(WorkerPool::new(2)),
        "ring",
        LbConfig::new(1.0 / 3.0, 60).with_seed(2),
    );
    NetServer::bind(
        "127.0.0.1:0",
        ctx,
        ServerConfig {
            outbox_cap: OUTBOX_CAP,
            ..Default::default()
        },
    )
    .unwrap()
}

/// The largest response a flood request can provoke, on the wire:
/// header + count + 32 answers at 5 bytes. The server's hard memory
/// bound per connection is `outbox_cap + one response`.
const BATCH: usize = 32;
const MAX_RESPONSE_FRAME: usize = 24 + 4 + BATCH * 5;

#[test]
fn dead_client_cannot_stall_others_or_balloon_the_outbox() {
    let server = spawn_small_outbox_server();
    let addr = server.addr();

    // The dead client: nonblocking socket, writes query batches until
    // both its own send buffer and the server's receive buffer are
    // full, never reads a byte of response.
    let dead = TcpStream::connect(addr).unwrap();
    dead.set_nonblocking(true).unwrap();
    let mut flood = Vec::new();
    let qs: Vec<Query> = (0..BATCH as u32).map(Query::ClusterOf).collect();
    Request::QueryBatch(qs.clone())
        .encode(&mut flood, 0)
        .unwrap();
    let mut flooded: usize = 0;
    // Partial writes must resume mid-frame, or the stream desyncs.
    let mut off = 0usize;
    let flood_deadline = Instant::now() + Duration::from_secs(10);
    // Keep pushing until the kernel refuses more twice in a row with a
    // settle pause between — the server has by then paused reads.
    let mut consecutive_blocks = 0;
    while consecutive_blocks < 2 && Instant::now() < flood_deadline {
        match (&dead).write(&flood[off..]) {
            Ok(n) => {
                flooded += n;
                off = (off + n) % flood.len();
                consecutive_blocks = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                consecutive_blocks += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("flood write failed: {e}"),
        }
    }
    assert!(
        flooded > 4 * OUTBOX_CAP,
        "flood too small to prove anything: {flooded} bytes"
    );

    // While the dead client is wedged, other connections make steady
    // progress with sane latency.
    let mut live = NetClient::connect(addr).unwrap();
    let t0 = Instant::now();
    let rounds = 200;
    for i in 0..rounds {
        let got = live
            .query_batch(&[Query::ClusterOf(i % 30), Query::SameCluster(0, 1)])
            .unwrap();
        assert_eq!(got.len(), 2);
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "live client starved behind the dead one: {rounds} round trips took {elapsed:?}"
    );

    // Bounded memory: the outbox high-water mark never exceeded
    // cap + one response frame, despite megabytes of flooded requests.
    let stats = server.stats();
    assert!(
        stats.backpressure_pauses >= 1,
        "server never paused the dead client: {stats:?}"
    );
    assert!(
        stats.outbox_hwm as usize <= OUTBOX_CAP + MAX_RESPONSE_FRAME,
        "outbox grew past its bound: hwm = {} > {} + {}",
        stats.outbox_hwm,
        OUTBOX_CAP,
        MAX_RESPONSE_FRAME
    );

    // The dead client is stalled but not dropped: still an active conn.
    assert!(stats.active >= 2, "dead client was evicted: {stats:?}");

    // Recovery: once the dead client finally drains its responses, the
    // server resumes reading and serves the backlog.
    dead.set_nonblocking(false).unwrap();
    dead.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sink = vec![0u8; 64 * 1024];
    let mut drained = 0usize;
    use std::io::Read;
    let drain_deadline = Instant::now() + Duration::from_secs(20);
    while drained < OUTBOX_CAP && Instant::now() < drain_deadline {
        match (&dead).read(&mut sink) {
            Ok(0) => break,
            Ok(n) => drained += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => panic!("drain read failed: {e}"),
        }
    }
    assert!(
        drained > 0,
        "no responses ever reached the formerly-dead client"
    );

    server.shutdown();
}
