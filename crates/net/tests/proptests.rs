//! Protocol property tests: `encode ∘ decode == id` over arbitrary
//! request/response batches, robust to every split point (the decoder
//! is fed one byte at a time), and adversarial corruption/truncation
//! surfaces as typed [`WireError`]s — **never** a panic, and never a
//! silently wrong message.

use lbc_graph::GraphDelta;
use lbc_net::wire::opcode;
use lbc_net::{
    Frame, FrameDecoder, Member, PeerLag, ReplMsg, ReplStatus, Request, Response, Role, ServerInfo,
    VoteResp, WireError,
};
use lbc_obs::{Event, EventKind, HistSnapshot, ObsSnapshot, HIST_BUCKETS};
use lbc_runtime::{Answer, CacheStats, Query};
use proptest::prelude::*;

/// Build a query from three drawn words.
fn query_from(tag: u8, a: u32, b: u32) -> Query {
    match tag % 3 {
        0 => Query::SameCluster(a, b),
        1 => Query::ClusterOf(a),
        _ => Query::ClusterSize(a),
    }
}

fn answer_from(tag: u8, v: u32) -> Answer {
    match tag % 3 {
        0 => Answer::Bool(v % 2 == 1),
        1 => Answer::Label(v),
        _ => Answer::Size(v),
    }
}

/// Decode a full byte stream through N-byte chunks, collecting frames.
fn decode_chunked(bytes: &[u8], chunk: usize) -> Result<Vec<Frame>, WireError> {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        dec.push(piece);
        while let Some(f) = dec.next_frame()? {
            frames.push(f);
        }
    }
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Request batches round-trip bit-for-bit through the frame layer,
    /// regardless of how the stream is sliced: whole-buffer, 1-byte
    /// chunks (every possible split boundary), and a drawn chunk size.
    #[test]
    fn request_encode_decode_is_identity(
        queries in proptest::collection::vec((0u8..3, 0u32..u32::MAX, 0u32..u32::MAX), 0..48),
        request_id in 0u64..u64::MAX,
        chunk in 1usize..64,
    ) {
        let req = Request::QueryBatch(
            queries.iter().map(|&(t, a, b)| query_from(t, a, b)).collect(),
        );
        let mut bytes = Vec::new();
        req.encode(&mut bytes, request_id).unwrap();

        for chunk in [bytes.len().max(1), 1, chunk] {
            let frames = decode_chunked(&bytes, chunk).unwrap();
            prop_assert_eq!(frames.len(), 1);
            prop_assert_eq!(frames[0].request_id, request_id);
            let back = Request::from_frame(&frames[0]).unwrap();
            prop_assert_eq!(&back, &req);
        }
    }

    /// Multi-message streams survive 1-byte feeding with order and
    /// content intact — requests and responses interleaved the way a
    /// duplex socket would see them.
    #[test]
    fn mixed_stream_one_byte_chunks(
        tags in proptest::collection::vec((0u8..6, 0u32..1000, 0u64..u64::MAX), 1..12),
    ) {
        let mut bytes = Vec::new();
        let mut want: Vec<Request> = Vec::new();
        for (i, &(tag, v, id)) in tags.iter().enumerate() {
            let req = match tag {
                0 => Request::Ping,
                1 => Request::CacheStats,
                2 => Request::Info,
                3 => {
                    let mut d = GraphDelta::new();
                    d.add_nodes((v % 7) as usize);
                    d.add_edge(v, v.wrapping_add(1));
                    if i % 2 == 0 {
                        d.remove_edge(v / 2, v / 2 + 3);
                    }
                    Request::SubmitDelta(d)
                }
                5 => Request::ReplVote {
                    candidate_id: v as u64,
                    candidate_seq: (v as u64) << 3,
                    term: (v as u64) << 1,
                },
                _ => Request::QueryBatch(vec![Query::ClusterOf(v), Query::SameCluster(v, v + 1)]),
            };
            req.encode(&mut bytes, id).unwrap();
            want.push(req);
        }
        let frames = decode_chunked(&bytes, 1).unwrap();
        prop_assert_eq!(frames.len(), want.len());
        for (f, w) in frames.iter().zip(&want) {
            prop_assert_eq!(&Request::from_frame(f).unwrap(), w);
        }
    }

    /// Response batches round-trip identically (the server→client
    /// direction), including every answer variant and error frames.
    #[test]
    fn response_encode_decode_is_identity(
        answers in proptest::collection::vec((0u8..3, 0u32..u32::MAX), 0..48),
        stats in (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        msg_len in 0usize..64,
        request_id in 0u64..u64::MAX,
    ) {
        let responses = vec![
            Response::Answers(answers.iter().map(|&(t, v)| answer_from(t, v)).collect()),
            Response::CacheStats(CacheStats {
                hits: stats.0,
                misses: stats.1,
                evictions: stats.2,
                ..Default::default()
            }),
            Response::Error {
                code: (stats.0 % 5) as u16,
                message: "e".repeat(msg_len),
            },
            Response::Vote(VoteResp {
                granted: stats.0 % 2 == 0,
                voter_id: stats.1,
                voter_seq: stats.2,
                voter_role: if stats.1 % 2 == 0 { Role::Follower } else { Role::Promoted },
                term: stats.0 ^ stats.2,
            }),
            Response::Pong,
        ];
        let mut bytes = Vec::new();
        for r in &responses {
            r.encode(&mut bytes, request_id).unwrap();
        }
        for chunk in [1usize, 7, bytes.len().max(1)] {
            let frames = decode_chunked(&bytes, chunk).unwrap();
            prop_assert_eq!(frames.len(), responses.len());
            for (f, w) in frames.iter().zip(&responses) {
                prop_assert_eq!(&Response::from_frame(f).unwrap(), w);
            }
        }
    }

    /// Flipping any single byte of a valid stream can never produce the
    /// original message sequence: it is caught as a typed error (frame
    /// layer or typed-parse layer) or leaves the decoder waiting for
    /// more bytes — and it never panics.
    #[test]
    fn single_byte_corruption_is_typed_never_panics(
        queries in proptest::collection::vec((0u8..3, 0u32..500, 0u32..500), 1..8),
        flip_pos_seed in 0usize..10_000,
        flip_bits in 1u8..=255,
    ) {
        let req = Request::QueryBatch(
            queries.iter().map(|&(t, a, b)| query_from(t, a, b)).collect(),
        );
        let mut bytes = Vec::new();
        req.encode(&mut bytes, 42).unwrap();
        let pos = flip_pos_seed % bytes.len();
        bytes[pos] ^= flip_bits;

        // Whole-stream and byte-at-a-time feeding must agree that the
        // corruption never yields the original request back.
        for chunk in [bytes.len(), 1] {
            match decode_chunked(&bytes, chunk) {
                Err(_) => {} // typed error: good
                Ok(frames) => {
                    // No error: the flip must have landed such that the
                    // decoder is still waiting (e.g. a grown length
                    // field) — it cannot have produced the original.
                    if let Some(f) = frames.first() {
                        // A typed parse error is fine too; only the
                        // original coming back would be a lie.
                        if let Ok(back) = Request::from_frame(f) {
                            prop_assert!(
                                back != req,
                                "corrupted stream decoded to the original request"
                            );
                        }
                    } else {
                        prop_assert!(frames.is_empty());
                    }
                }
            }
        }
    }

    /// Every strict prefix of a valid stream decodes only complete
    /// frames and then waits — truncation never fabricates a frame and
    /// never errors (the bytes seen so far are all valid).
    #[test]
    fn truncation_yields_prefix_frames_then_waits(
        count in 1usize..6,
        cut_seed in 0usize..10_000,
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = Vec::new();
        for i in 0..count {
            Request::QueryBatch(vec![Query::ClusterOf(i as u32)])
                .encode(&mut bytes, i as u64)
                .unwrap();
            boundaries.push(bytes.len());
        }
        let cut = cut_seed % bytes.len();
        let frames = decode_chunked(&bytes[..cut], 1).unwrap();
        let complete = boundaries.iter().filter(|&&b| b <= cut).count();
        prop_assert_eq!(frames.len(), complete);
        for (i, f) in frames.iter().enumerate() {
            prop_assert_eq!(f.request_id, i as u64);
        }
    }

    /// Arbitrary garbage bytes never panic the decoder: they produce a
    /// typed error or (if they happen to look like an incomplete
    /// header) leave it waiting.
    #[test]
    fn arbitrary_garbage_never_panics(
        garbage in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let mut dec = FrameDecoder::new();
        dec.push(&garbage);
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => {
                    // Absurdly unlikely (needs a valid CRC) but legal;
                    // the typed parse must still never panic.
                    let _ = Request::from_frame(&f);
                    let _ = Response::from_frame(&f);
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    /// Every replication message round-trips bit-for-bit through the
    /// frame layer at every feeding granularity — whole-buffer, 1-byte
    /// chunks, and a drawn chunk size — in stream order.
    #[test]
    fn repl_msg_encode_decode_is_identity(
        ids in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        chunk_count in 0u32..10_000,
        blob in proptest::collection::vec(0u8..=255, 0..256),
        roster in proptest::collection::vec((0u64..1000, 0u64..u64::MAX, 0u8..=255), 0..8),
        member_seeds in proptest::collection::vec((0u64..1000, 0u8..=255), 0..6),
        quorum in (0u32..64, 0u32..64, 0u8..2),
        role_tag in 0u8..3,
        request_id in 0u64..u64::MAX,
        chunk in 1usize..64,
        reason_len in 0usize..64,
    ) {
        let members: Vec<Member> = member_seeds
            .iter()
            .map(|&(id, addr_seed)| Member {
                id,
                // Addresses of every length class, empty included.
                addr: "m:".repeat(addr_seed as usize % 5),
            })
            .collect();
        let peers: Vec<PeerLag> = roster
            .iter()
            .map(|&(follower_id, applied_seq, addr_seed)| PeerLag {
                follower_id,
                applied_seq,
                // Addresses of every length class, empty included.
                addr: "a:".repeat(addr_seed as usize % 5),
                repl_addr: format!("10.0.0.{addr_seed}:7200"),
            })
            .collect();
        let role = match role_tag {
            0 => Role::Primary,
            1 => Role::Follower,
            _ => Role::Promoted,
        };
        let hello_addr = peers.first().map(|p| p.addr.clone()).unwrap_or_default();
        let msgs = vec![
            ReplMsg::Hello {
                follower_id: ids.0,
                have_seq: ids.1,
                term: ids.2,
                addr: hello_addr.clone(),
                repl_addr: hello_addr,
                members: members.clone(),
            },
            ReplMsg::Ack { applied_seq: ids.2 },
            ReplMsg::Status,
            ReplMsg::SnapBegin { applied_seq: ids.0, total_len: ids.1, chunk_count },
            ReplMsg::SnapChunk { offset: ids.2, bytes: blob.clone() },
            ReplMsg::SnapEnd { crc64: ids.0 },
            ReplMsg::WalRec { term: ids.1, bytes: blob },
            ReplMsg::Heartbeat {
                epoch: ids.1,
                term: ids.0,
                roster: peers.clone(),
                members: members.clone(),
            },
            ReplMsg::StatusResp(ReplStatus {
                role,
                applied_seq: ids.2,
                term: ids.0 ^ ids.1,
                // Ack ages mirror the roster (empty rosters exercise
                // the omitted-tail encoding).
                ack_ages: peers
                    .iter()
                    .map(|p| (p.follower_id, p.applied_seq % 60_000))
                    .collect(),
                peers,
                members,
                votes_seen: quorum.0,
                votes_needed: quorum.1,
                no_quorum: quorum.2 == 1,
            }),
            ReplMsg::Deny { reason: "d".repeat(reason_len) },
        ];
        let mut bytes = Vec::new();
        for m in &msgs {
            m.encode(&mut bytes, request_id).unwrap();
        }
        for chunk in [bytes.len().max(1), 1, chunk] {
            let frames = decode_chunked(&bytes, chunk).unwrap();
            prop_assert_eq!(frames.len(), msgs.len());
            for (f, w) in frames.iter().zip(&msgs) {
                prop_assert_eq!(f.request_id, request_id);
                prop_assert_eq!(&ReplMsg::from_frame(f).unwrap(), w);
            }
        }
    }

    /// Flipping any single byte of a valid replication stream never
    /// yields the original message back: typed error, a decoder left
    /// waiting, or a provably different message — and never a panic.
    #[test]
    fn repl_single_byte_corruption_is_typed_never_panics(
        seq in 0u64..u64::MAX,
        roster in proptest::collection::vec((0u64..1000, 0u64..u64::MAX), 1..6),
        flip_pos_seed in 0usize..10_000,
        flip_bits in 1u8..=255,
    ) {
        let msg = ReplMsg::Heartbeat {
            epoch: seq,
            term: seq ^ 0x5a5a,
            roster: roster
                .iter()
                .map(|&(follower_id, applied_seq)| PeerLag {
                    follower_id,
                    applied_seq,
                    addr: format!("10.0.0.{}:7000", follower_id % 250),
                    repl_addr: String::new(),
                })
                .collect(),
            members: roster
                .iter()
                .map(|&(id, _)| Member {
                    id,
                    addr: format!("10.0.0.{}:7000", id % 250),
                })
                .collect(),
        };
        let mut bytes = Vec::new();
        msg.encode(&mut bytes, 7).unwrap();
        let pos = flip_pos_seed % bytes.len();
        bytes[pos] ^= flip_bits;

        for chunk in [bytes.len(), 1] {
            match decode_chunked(&bytes, chunk) {
                Err(_) => {} // typed error: good
                Ok(frames) => {
                    if let Some(f) = frames.first() {
                        if let Ok(back) = ReplMsg::from_frame(f) {
                            prop_assert!(
                                back != msg,
                                "corrupted stream decoded to the original repl message"
                            );
                        }
                    } else {
                        prop_assert!(frames.is_empty());
                    }
                }
            }
        }
    }

    /// Garbage fed to the typed repl parser (valid frame, arbitrary
    /// repl opcode + payload) is a typed error or a message that
    /// re-encodes to the same payload — never a panic.
    #[test]
    fn repl_parse_of_arbitrary_payload_never_panics(
        op_seed in 0usize..9,
        payload in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        let op = [
            opcode::REPL_HELLO,
            opcode::REPL_ACK,
            opcode::REPL_STATUS,
            opcode::SNAP_BEGIN,
            opcode::SNAP_CHUNK,
            opcode::SNAP_END,
            opcode::WAL_REC,
            opcode::HEARTBEAT,
            opcode::STATUS_RESP,
        ][op_seed];
        let mut bytes = Vec::new();
        lbc_net::encode_frame(&mut bytes, op, 3, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        if let Ok(msg) = ReplMsg::from_frame(&f) {
            // Strict parse: anything accepted must round-trip exactly.
            prop_assert_eq!(msg.payload(), payload);
        }
    }

    /// The promotion-time reconciliation frames (`WAL_PULL` request,
    /// `WAL_SUFFIX` response) round-trip bit-for-bit at every feeding
    /// granularity, and a flipped byte never yields the originals back.
    #[test]
    fn wal_pull_and_suffix_round_trip_and_survive_corruption(
        after_seq in 0u64..u64::MAX,
        records in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..64),
            0..12,
        ),
        chunk in 1usize..64,
        flip_pos_seed in 0usize..10_000,
        flip_bits in 1u8..=255,
    ) {
        let req = Request::WalPull { after_seq };
        let resp = Response::WalSuffix { records };
        let mut bytes = Vec::new();
        req.encode(&mut bytes, 11).unwrap();
        resp.encode(&mut bytes, 12).unwrap();
        for chunk in [bytes.len(), 1, chunk] {
            let frames = decode_chunked(&bytes, chunk).unwrap();
            prop_assert_eq!(frames.len(), 2);
            prop_assert_eq!(&Request::from_frame(&frames[0]).unwrap(), &req);
            prop_assert_eq!(&Response::from_frame(&frames[1]).unwrap(), &resp);
        }
        // Single-byte corruption: a typed error, a decoder left
        // waiting, or provably different messages — never a panic and
        // never the original pair.
        let pos = flip_pos_seed % bytes.len();
        bytes[pos] ^= flip_bits;
        match decode_chunked(&bytes, 1) {
            Err(_) => {}
            Ok(frames) => {
                let got_req = frames.first().map(Request::from_frame);
                let got_resp = frames.get(1).map(Response::from_frame);
                if let (Some(Ok(r0)), Some(Ok(r1))) = (got_req, got_resp) {
                    prop_assert!(
                        r0 != req || r1 != resp,
                        "corrupted stream decoded to the original reconciliation pair"
                    );
                }
            }
        }
    }

    /// Arbitrary payloads under the reconciliation opcodes (whose
    /// length fields are attacker-controlled) parse to a typed error
    /// or a valid message — never a panic, never an over-allocation.
    #[test]
    fn wal_pull_and_suffix_arbitrary_payload_never_panics(
        payload in proptest::collection::vec(0u8..=255, 0..128),
        pull_tag in 0u8..2,
    ) {
        let as_pull = pull_tag == 1;
        let op = if as_pull { opcode::WAL_PULL } else { opcode::WAL_SUFFIX };
        let mut bytes = Vec::new();
        lbc_net::encode_frame(&mut bytes, op, 3, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        if as_pull {
            if let Ok(back) = Request::from_frame(&f) {
                prop_assert!(matches!(back, Request::WalPull { .. }));
            }
        } else if let Ok(back) = Response::from_frame(&f) {
            prop_assert!(matches!(back, Response::WalSuffix { .. }));
        }
    }

    /// Quorum-vote frames round-trip with the full vote field set and
    /// survive single-byte corruption as typed errors, not panics.
    #[test]
    fn vote_frames_round_trip_and_survive_corruption(
        candidate in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        voter in (0u64..u64::MAX, 0u64..u64::MAX, 0u8..3, 0u8..2),
        voter_term in 0u64..u64::MAX,
        flip_pos_seed in 0usize..10_000,
        flip_bits in 1u8..=255,
    ) {
        let req = Request::ReplVote {
            candidate_id: candidate.0,
            candidate_seq: candidate.1,
            term: candidate.2,
        };
        let resp = Response::Vote(VoteResp {
            granted: voter.3 == 1,
            voter_id: voter.0,
            voter_seq: voter.1,
            voter_role: match voter.2 {
                0 => Role::Primary,
                1 => Role::Follower,
                _ => Role::Promoted,
            },
            term: voter_term,
        });
        let mut bytes = Vec::new();
        req.encode(&mut bytes, 21).unwrap();
        resp.encode(&mut bytes, 22).unwrap();
        let frames = decode_chunked(&bytes, 1).unwrap();
        prop_assert_eq!(frames.len(), 2);
        prop_assert_eq!(&Request::from_frame(&frames[0]).unwrap(), &req);
        prop_assert_eq!(&Response::from_frame(&frames[1]).unwrap(), &resp);

        let pos = flip_pos_seed % bytes.len();
        bytes[pos] ^= flip_bits;
        match decode_chunked(&bytes, 1) {
            Err(_) => {}
            Ok(frames) => {
                let got_req = frames.first().map(Request::from_frame);
                let got_resp = frames.get(1).map(Response::from_frame);
                if let (Some(Ok(r0)), Some(Ok(r1))) = (got_req, got_resp) {
                    prop_assert!(
                        r0 != req || r1 != resp,
                        "corrupted stream decoded to the original vote pair"
                    );
                }
            }
        }
    }

    /// The client-facing `Info` response — whose replication term (the
    /// fence clients compare against) travels in the skip-tolerant
    /// payload tail — round-trips bit-for-bit at every feeding
    /// granularity, and a flipped byte never yields the original back.
    #[test]
    fn info_frames_round_trip_and_survive_corruption(
        dims in (0u64..u64::MAX, 0u64..u64::MAX, 0u32..u32::MAX),
        repl in (0u64..u64::MAX, 0u8..3, 0u8..2, 0u16..512),
        term in 0u64..u64::MAX,
        addr_len in 0usize..24,
        chunk in 1usize..64,
        flip_pos_seed in 0usize..10_000,
        flip_bits in 1u8..=255,
    ) {
        let resp = Response::Info(ServerInfo {
            dataset: "ds".to_string(),
            n: dims.0,
            m: dims.1,
            k: dims.2,
            applied_seq: repl.0,
            role: match repl.1 {
                0 => Role::Primary,
                1 => Role::Follower,
                _ => Role::Promoted,
            },
            no_quorum: repl.2 == 1,
            votes_seen: repl.3,
            votes_needed: repl.3 / 2 + 1,
            member_count: repl.3 % 7,
            repl_addr: "r".repeat(addr_len),
            term,
        });
        let mut bytes = Vec::new();
        resp.encode(&mut bytes, 17).unwrap();
        for chunk in [bytes.len().max(1), 1, chunk] {
            let frames = decode_chunked(&bytes, chunk).unwrap();
            prop_assert_eq!(frames.len(), 1);
            prop_assert_eq!(&Response::from_frame(&frames[0]).unwrap(), &resp);
        }
        let pos = flip_pos_seed % bytes.len();
        bytes[pos] ^= flip_bits;
        match decode_chunked(&bytes, 1) {
            Err(_) => {} // typed error: good
            Ok(frames) => {
                if let Some(Ok(back)) = frames.first().map(Response::from_frame) {
                    prop_assert!(
                        back != resp,
                        "corrupted stream decoded to the original info response"
                    );
                }
            }
        }
    }

    /// STATS request/response pairs round-trip bit-for-bit at every
    /// feeding granularity: drawn counters, gauges, sparse histogram
    /// buckets (ascending, in range), and ring events of every kind.
    #[test]
    fn stats_frames_round_trip_at_every_granularity(
        max_events in 0u32..1024,
        counters in proptest::collection::vec((0u8..=255, 0u64..u64::MAX), 0..8),
        gauges in proptest::collection::vec((0u8..=255, i64::MIN..i64::MAX), 0..6),
        bucket_seeds in proptest::collection::vec((0u32..64, 1u64..1_000_000), 0..12),
        events in proptest::collection::vec(
            (0u64..u64::MAX, 0u64..u64::MAX, 0u8..11, 0usize..32),
            0..6,
        ),
        chunk in 1usize..64,
        request_id in 0u64..u64::MAX,
    ) {
        // Bucket indices must be strictly ascending and < HIST_BUCKETS:
        // turn drawn gaps into a cumulative, deduplicated index walk.
        let mut idx = 0u32;
        let mut buckets = Vec::new();
        for &(gap, count) in &bucket_seeds {
            idx = (idx + 1 + gap).min(HIST_BUCKETS as u32 - 1);
            if buckets.last().is_some_and(|&(i, _)| i >= idx) {
                break; // walk saturated at the top bucket
            }
            buckets.push((idx, count));
        }
        let hist_count: u64 = buckets.iter().map(|&(_, c)| c).sum();
        let snap = ObsSnapshot {
            counters: counters
                .iter()
                .enumerate()
                .map(|(i, &(seed, v))| (format!("c{i}_{}", "x".repeat(seed as usize % 5)), v))
                .collect(),
            gauges: gauges
                .iter()
                .enumerate()
                .map(|(i, &(seed, v))| (format!("g{i}_{}", "y".repeat(seed as usize % 5)), v))
                .collect(),
            hists: vec![(
                "rpc_query_batch_service_ns".to_string(),
                HistSnapshot {
                    count: hist_count,
                    sum: hist_count.saturating_mul(7),
                    min: if hist_count == 0 { u64::MAX } else { 3 },
                    max: hist_count.saturating_mul(9),
                    buckets,
                },
            )],
            events: events
                .iter()
                .map(|&(seq, at_ms, kind_seed, detail_len)| Event {
                    seq,
                    at_ms,
                    kind: EventKind::from_u8(kind_seed + 1).unwrap(),
                    detail: "e".repeat(detail_len),
                })
                .collect(),
        };
        let req = Request::Stats { max_events };
        let resp = Response::Stats(snap);
        let mut bytes = Vec::new();
        req.encode(&mut bytes, request_id).unwrap();
        resp.encode(&mut bytes, request_id).unwrap();
        for chunk in [bytes.len().max(1), 1, chunk] {
            let frames = decode_chunked(&bytes, chunk).unwrap();
            prop_assert_eq!(frames.len(), 2);
            prop_assert_eq!(&Request::from_frame(&frames[0]).unwrap(), &req);
            prop_assert_eq!(&Response::from_frame(&frames[1]).unwrap(), &resp);
        }
    }

    /// Flipping any single byte of a valid STATS exchange never yields
    /// the original messages back — typed error, waiting decoder, or a
    /// provably different message, never a panic.
    #[test]
    fn stats_single_byte_corruption_is_typed_never_panics(
        max_events in 0u32..1024,
        counter_val in 0u64..u64::MAX,
        flip_pos_seed in 0usize..10_000,
        flip_bits in 1u8..=255,
    ) {
        let req = Request::Stats { max_events };
        let resp = Response::Stats(ObsSnapshot {
            counters: vec![("net_frames_in_total".to_string(), counter_val)],
            gauges: vec![("net_active_conns".to_string(), 3)],
            hists: vec![(
                "rpc_ping_service_ns".to_string(),
                HistSnapshot { count: 2, sum: 30, min: 10, max: 20, buckets: vec![(5, 2)] },
            )],
            events: vec![Event {
                seq: 1,
                at_ms: 42,
                kind: EventKind::RoleChange,
                detail: "follower->promoted".to_string(),
            }],
        });
        let mut bytes = Vec::new();
        req.encode(&mut bytes, 31).unwrap();
        resp.encode(&mut bytes, 32).unwrap();
        let pos = flip_pos_seed % bytes.len();
        bytes[pos] ^= flip_bits;
        for chunk in [bytes.len(), 1] {
            match decode_chunked(&bytes, chunk) {
                Err(_) => {} // typed error: good
                Ok(frames) => {
                    let got_req = frames.first().map(Request::from_frame);
                    let got_resp = frames.get(1).map(Response::from_frame);
                    if let (Some(Ok(r0)), Some(Ok(r1))) = (got_req, got_resp) {
                        prop_assert!(
                            r0 != req || r1 != resp,
                            "corrupted stream decoded to the original stats pair"
                        );
                    }
                }
            }
        }
    }

    /// Arbitrary payloads under the STATS opcodes (whose count fields
    /// are attacker-controlled) parse to a typed error or a valid
    /// message — never a panic, never an over-allocation.
    #[test]
    fn stats_arbitrary_payload_never_panics(
        payload in proptest::collection::vec(0u8..=255, 0..160),
        as_req in 0u8..2,
    ) {
        let op = if as_req == 1 { opcode::STATS } else { opcode::STATS_RESP };
        let mut bytes = Vec::new();
        lbc_net::encode_frame(&mut bytes, op, 3, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let f = dec.next_frame().unwrap().unwrap();
        if as_req == 1 {
            if let Ok(back) = Request::from_frame(&f) {
                prop_assert!(matches!(back, Request::Stats { .. }));
            }
        } else if let Ok(back) = Response::from_frame(&f) {
            prop_assert!(matches!(back, Response::Stats(_)));
        }
    }

    /// Deltas round-trip exactly: node additions, edge adds, edge
    /// removals, in order.
    #[test]
    fn delta_round_trip(
        added_nodes in 0usize..1000,
        adds in proptest::collection::vec((0u32..10_000, 0u32..10_000), 0..32),
        removes in proptest::collection::vec((0u32..10_000, 0u32..10_000), 0..32),
    ) {
        let mut d = GraphDelta::new();
        d.add_nodes(added_nodes);
        for &(u, v) in &adds {
            d.add_edge(u, v);
        }
        for &(u, v) in &removes {
            d.remove_edge(u, v);
        }
        let req = Request::SubmitDelta(d.clone());
        let mut bytes = Vec::new();
        req.encode(&mut bytes, 5).unwrap();
        let frames = decode_chunked(&bytes, 3).unwrap();
        prop_assert_eq!(frames.len(), 1);
        match Request::from_frame(&frames[0]).unwrap() {
            Request::SubmitDelta(back) => {
                prop_assert_eq!(back.added_nodes(), d.added_nodes());
                prop_assert_eq!(back.added_edges(), d.added_edges());
                prop_assert_eq!(back.removed_edges(), d.removed_edges());
            }
            other => prop_assert!(false, "wrong request decoded: {:?}", other),
        }
    }
}

/// Deterministic (non-property) adversarial cases worth pinning by name.
#[test]
fn every_split_point_of_one_frame() {
    let req = Request::QueryBatch(vec![
        Query::SameCluster(3, 9),
        Query::ClusterSize(1_000_000),
    ]);
    let mut bytes = Vec::new();
    req.encode(&mut bytes, 123).unwrap();
    // Exhaustive: split the frame at EVERY byte boundary.
    for cut in 0..=bytes.len() {
        let mut dec = FrameDecoder::new();
        dec.push(&bytes[..cut]);
        let frame = match dec.next_frame().unwrap() {
            Some(f) => {
                assert_eq!(cut, bytes.len(), "frame fabricated at cut {cut}");
                f
            }
            None => {
                assert!(cut < bytes.len());
                dec.push(&bytes[cut..]);
                dec.next_frame()
                    .unwrap()
                    .expect("complete after both halves")
            }
        };
        assert_eq!(Request::from_frame(&frame).unwrap(), req);
    }
}

#[test]
fn bad_opcode_in_valid_frame_is_typed() {
    let mut bytes = Vec::new();
    lbc_net::encode_frame(&mut bytes, 0x7E, 1, &[]).unwrap();
    let mut dec = FrameDecoder::new();
    dec.push(&bytes);
    let f = dec.next_frame().unwrap().unwrap();
    assert!(matches!(
        Request::from_frame(&f),
        Err(WireError::BadOpcode { got: 0x7E })
    ));
    assert!(matches!(
        Response::from_frame(&f),
        Err(WireError::BadOpcode { got: 0x7E })
    ));
}

#[test]
fn response_opcode_constants_have_high_bit() {
    for op in [
        opcode::ANSWERS,
        opcode::DELTA_DONE,
        opcode::CACHE_STATS_RESP,
        opcode::STATS_RESP,
        opcode::INFO_RESP,
        opcode::PONG,
        opcode::ERROR,
        // Primary → follower stream messages live in response space.
        opcode::SNAP_BEGIN,
        opcode::SNAP_CHUNK,
        opcode::SNAP_END,
        opcode::WAL_REC,
        opcode::HEARTBEAT,
        opcode::STATUS_RESP,
        opcode::VOTE_RESP,
        opcode::REPL_DENY,
        opcode::WAL_SUFFIX,
    ] {
        assert!(op & 0x80 != 0, "response opcode {op:#04x} missing high bit");
    }
    for op in [
        opcode::QUERY_BATCH,
        opcode::SUBMIT_DELTA,
        opcode::CACHE_STATS,
        opcode::INFO,
        opcode::PING,
        opcode::REPL_VOTE,
        opcode::WAL_PULL,
        opcode::STATS,
        // Follower → primary messages live in request space.
        opcode::REPL_HELLO,
        opcode::REPL_ACK,
        opcode::REPL_STATUS,
    ] {
        assert!(op & 0x80 == 0, "request opcode {op:#04x} has high bit");
    }
}

#[test]
fn repl_every_split_point_of_one_frame() {
    // The densest repl message (nested roster) split at EVERY byte.
    let msg = ReplMsg::Heartbeat {
        epoch: 41,
        term: 6,
        roster: vec![
            PeerLag {
                follower_id: 1,
                applied_seq: 40,
                addr: "127.0.0.1:7101".to_string(),
                repl_addr: "127.0.0.1:7201".to_string(),
            },
            PeerLag {
                follower_id: 2,
                applied_seq: 41,
                addr: "127.0.0.1:7102".to_string(),
                repl_addr: String::new(),
            },
        ],
        members: vec![
            Member {
                id: 1,
                addr: "127.0.0.1:7101".to_string(),
            },
            Member {
                id: 2,
                addr: "127.0.0.1:7102".to_string(),
            },
            Member {
                id: 3,
                addr: "127.0.0.1:7103".to_string(),
            },
        ],
    };
    let mut bytes = Vec::new();
    msg.encode(&mut bytes, 9).unwrap();
    for cut in 0..=bytes.len() {
        let mut dec = FrameDecoder::new();
        dec.push(&bytes[..cut]);
        let frame = match dec.next_frame().unwrap() {
            Some(f) => {
                assert_eq!(cut, bytes.len(), "frame fabricated at cut {cut}");
                f
            }
            None => {
                assert!(cut < bytes.len());
                dec.push(&bytes[cut..]);
                dec.next_frame()
                    .unwrap()
                    .expect("complete after both halves")
            }
        };
        assert_eq!(ReplMsg::from_frame(&frame).unwrap(), msg);
    }
}
