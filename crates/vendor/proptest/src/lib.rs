//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimised.
//! * **Deterministic seeds.** Each generated test derives its RNG seed
//!   from the test name, so failures reproduce exactly across runs —
//!   upstream randomises and persists seeds in a regressions file.
//! * `prop_assume!` skips the current case rather than drawing a
//!   replacement, so the effective case count can be lower than
//!   configured when assumptions are tight.

use rand::Rng as _;

/// RNG handed to strategies by the generated test harness.
pub type TestRng = rand::rngs::StdRng;

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Admissible length specifications for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derive a stable RNG seed from a test name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed: {:?} != {:?}", left, right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "{}: {:?} != {:?}", format!($($fmt)+), left, right
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            // No replacement draw in the shim: just skip this case.
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..cfg.cases {
                $(let $arg = {
                    let __s = $strat;
                    $crate::Strategy::generate(&__s, &mut __rng)
                };)+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), __case + 1, cfg.cases, e
                    );
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec((0u32..5, 0u32..5), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5, "pair ({a}, {b}) out of range");
            }
        }

        #[test]
        fn flat_map_threads_values(v in (1usize..6).prop_flat_map(|n| {
            collection::vec(0usize..n, n).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
            prop_assert!(xs.iter().all(|&x| x < n));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = <TestRng as ::rand::SeedableRng>::seed_from_u64(seed_for("t"));
        let mut b = <TestRng as ::rand::SeedableRng>::seed_from_u64(seed_for("t"));
        let s = 0u64..100;
        use crate::{seed_for, Strategy, TestRng};
        let xs: Vec<u64> = (0..10).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..10).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
