//! Vendored, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! Implements the subset the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical
//! machinery. Each benchmark is warmed up once and then timed for a
//! bounded number of iterations; the mean and minimum per-iteration
//! times are printed. No plots, no statistics files.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, one per `criterion_group!` run.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `name/parameter` for parameterised benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&id.label, self.throughput);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&id.label, self.throughput);
        self
    }

    /// End the group (printing is incremental, so this is cosmetic).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Measurement driver passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

/// Cap on total measurement time per benchmark.
const TIME_BUDGET: Duration = Duration::from_millis(1500);

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Time `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let budget_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("  {label}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "  {label}: mean {mean:?}, min {min:?} over {} iters",
            self.samples.len()
        );
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / mean.as_secs_f64();
                line.push_str(&format!(", {rate:.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / mean.as_secs_f64() / (1 << 20) as f64;
                line.push_str(&format!(", {rate:.1} MiB/s"));
            }
            None => {}
        }
        println!("{line}");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn harness_runs() {
        benches();
    }
}
