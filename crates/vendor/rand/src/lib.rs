//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The workspace pins its external dependencies to an offline allowlist;
//! this shim implements exactly the subset of the `rand` 0.9 API the
//! workspace uses — [`rngs::StdRng`], [`Rng::random`],
//! [`Rng::random_range`], [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom::shuffle`] — on top of xoshiro256++ seeded through
//! SplitMix64. All streams are fully deterministic for a given seed,
//! which is exactly the property the generators and tests rely on.

/// A source of random 64-bit words plus the derived sampling helpers.
pub trait Rng {
    /// Next raw 64-bit word from the stream.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` (uniform over its natural domain;
    /// `[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Sample uniformly from a half-open range.
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli(`p`) draw.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
}

/// Construction of an RNG from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full RNG state from one `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Random {
    fn random<R: Rng>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of a plain `% span` would be harmless here,
                // but this is just as cheap.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in random_range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (s as i128 + hi as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = <$t as Random>::random(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic general-purpose RNG: xoshiro256++ (Blackman &
    /// Vigna), state expanded from the seed by SplitMix64. Not the same
    /// stream as upstream `rand`'s `StdRng` (ChaCha12) — nothing in this
    /// workspace depends on that particular stream, only on determinism.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (`shuffle` is the only one the workspace uses).
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let x = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
        for _ in 0..100 {
            let x = r.random_range(3u32..=4);
            assert!(x == 3 || x == 4);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
