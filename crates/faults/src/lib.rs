//! `lbc-faults` — deterministic fault injection for the replication
//! stack and the store's WAL.
//!
//! The chaos harness needs faults that are **injected, not raced**: a
//! seeded schedule must produce the same partitions, the same torn
//! writes, and the same failed fsyncs on every run, so a failing seed
//! is a reproducer rather than a flake. Everything here is plain
//! synchronous plumbing the production code consults at its existing
//! seams:
//!
//! * [`FaultHook`] — consulted by *initiators* (a follower dialing or
//!   reading its primary, an election probe, a reconciliation pull)
//!   before touching a peer. Acceptors never check: a TCP acceptor
//!   cannot name its peer (ephemeral ports), and cutting the dialing
//!   side is sufficient — the initiator drops the link and the
//!   acceptor observes EOF or ack silence, exactly like a real
//!   partition.
//! * [`PartitionMatrix`] — mutable addr → group map; a link is cut iff
//!   the two endpoints sit in different groups. Chaos schedules flip
//!   whole groups at once and heal by collapsing back to one group.
//! * [`IoFaultHook`] — consulted by the store's WAL append; yields
//!   torn (prefix-only) writes and failed fsyncs on a seeded schedule
//!   so crash-recovery paths run under test instead of in production.
//! * [`SplitMix64`] — the tiny deterministic RNG every schedule draws
//!   from. No global state, no `rand` dependency: the crate is a leaf
//!   so `lbc-store` and `lbc-repl` can both hook it without cycles.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an initiator should do with one prospective link use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Link is healthy: proceed.
    Pass,
    /// Link is severed: fail the dial/read as if the peer were
    /// unreachable.
    Cut,
    /// Link is degraded: sleep this long, then proceed.
    Delay(Duration),
}

/// Link-level fault oracle, keyed by the peer's *listen* address (the
/// address the initiator dials — the one stable name both sides know).
pub trait FaultHook: Send + Sync + fmt::Debug {
    /// Consulted immediately before dialing `peer_addr`, and
    /// periodically while a long-lived stream to it is open.
    fn link(&self, peer_addr: &str) -> LinkFault;
}

/// Addr → partition-group map. Two addresses can talk iff they map to
/// the same group; an address never registered maps to group 0 (the
/// "world" group), so an empty matrix passes everything.
///
/// Schedules mutate the matrix live (`assign`, `heal`) while node
/// threads consult it through [`NodeFaults`]; a single mutex is fine —
/// lookups are off the hot path (one per dial, one per stream poll).
#[derive(Debug, Default)]
pub struct PartitionMatrix {
    groups: Mutex<HashMap<String, u32>>,
}

impl PartitionMatrix {
    pub fn new() -> PartitionMatrix {
        PartitionMatrix::default()
    }

    /// Put `addr` in `group`. Group ids are arbitrary labels; only
    /// equality matters.
    pub fn assign(&self, addr: &str, group: u32) {
        self.groups.lock().unwrap().insert(addr.to_string(), group);
    }

    /// Collapse every address back into group 0 — the healed network.
    pub fn heal(&self) {
        self.groups.lock().unwrap().clear();
    }

    fn group_of(&self, addr: &str) -> u32 {
        *self.groups.lock().unwrap().get(addr).unwrap_or(&0)
    }

    /// True iff the two endpoints currently sit in different groups.
    pub fn blocked(&self, a: &str, b: &str) -> bool {
        let groups = self.groups.lock().unwrap();
        groups.get(a).unwrap_or(&0) != groups.get(b).unwrap_or(&0)
    }
}

/// One node's view of a shared [`PartitionMatrix`]: the node knows its
/// own listen address, so `link(peer)` is just a blocked-pair lookup.
#[derive(Debug)]
pub struct NodeFaults {
    matrix: std::sync::Arc<PartitionMatrix>,
    self_addr: String,
}

impl NodeFaults {
    pub fn new(matrix: std::sync::Arc<PartitionMatrix>, self_addr: &str) -> NodeFaults {
        NodeFaults {
            matrix,
            self_addr: self_addr.to_string(),
        }
    }

    /// The group this node currently sits in.
    pub fn group(&self) -> u32 {
        self.matrix.group_of(&self.self_addr)
    }
}

impl FaultHook for NodeFaults {
    fn link(&self, peer_addr: &str) -> LinkFault {
        if self.matrix.blocked(&self.self_addr, peer_addr) {
            LinkFault::Cut
        } else {
            LinkFault::Pass
        }
    }
}

/// What the store should do with one prospective WAL append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Append normally.
    Pass,
    /// Write only the first `n` bytes of the encoded record, then
    /// report success — a torn tail the next open must heal.
    Torn(usize),
    /// Fail the write outright with an I/O error.
    FailWrite,
    /// Write fully but fail the `fsync`, as a dying disk would.
    FailFsync,
}

/// I/O fault oracle for the store's WAL append path.
pub trait IoFaultHook: Send + Sync + fmt::Debug {
    /// Consulted once per appended record, *before* the write.
    fn next_append(&self, dataset: &str) -> IoFault;
}

/// A fixed, pre-drawn sequence of [`IoFault`]s, consumed in order and
/// passing everything once exhausted. Build one from a seed with
/// [`ScriptedIoFaults::seeded`] or pin an exact script with
/// [`ScriptedIoFaults::new`].
#[derive(Debug)]
pub struct ScriptedIoFaults {
    script: Vec<IoFault>,
    next: AtomicUsize,
}

impl ScriptedIoFaults {
    pub fn new(script: Vec<IoFault>) -> ScriptedIoFaults {
        ScriptedIoFaults {
            script,
            next: AtomicUsize::new(0),
        }
    }

    /// `len` draws from a seeded RNG: mostly passes, with occasional
    /// torn writes (short prefixes) and failed fsyncs. `fault_per_mille`
    /// is the per-record fault probability in tenths of a percent.
    pub fn seeded(seed: u64, len: usize, fault_per_mille: u32) -> ScriptedIoFaults {
        let mut rng = SplitMix64::new(seed);
        let script = (0..len)
            .map(|_| {
                if rng.below(1000) >= fault_per_mille as u64 {
                    IoFault::Pass
                } else {
                    match rng.below(3) {
                        0 => IoFault::Torn(rng.below(24) as usize),
                        1 => IoFault::FailWrite,
                        _ => IoFault::FailFsync,
                    }
                }
            })
            .collect();
        ScriptedIoFaults::new(script)
    }

    /// How many faults have been consumed so far.
    pub fn consumed(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.script.len())
    }
}

impl IoFaultHook for ScriptedIoFaults {
    fn next_append(&self, _dataset: &str) -> IoFault {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.script.get(i).copied().unwrap_or(IoFault::Pass)
    }
}

/// SplitMix64 — the standard 64-bit mixer (Steele et al.), chosen for
/// the same reason the rest of the workspace uses deterministic seeds:
/// two runs from one seed must take identical branches.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_matrix_passes_everything() {
        let m = Arc::new(PartitionMatrix::new());
        let node = NodeFaults::new(Arc::clone(&m), "a:1");
        assert_eq!(node.link("b:2"), LinkFault::Pass);
        assert!(!m.blocked("a:1", "b:2"));
    }

    #[test]
    fn split_groups_cut_cross_links_and_heal_restores() {
        let m = Arc::new(PartitionMatrix::new());
        m.assign("a:1", 1);
        m.assign("b:2", 1);
        m.assign("c:3", 2);
        let a = NodeFaults::new(Arc::clone(&m), "a:1");
        let c = NodeFaults::new(Arc::clone(&m), "c:3");
        assert_eq!(a.link("b:2"), LinkFault::Pass);
        assert_eq!(a.link("c:3"), LinkFault::Cut);
        assert_eq!(c.link("a:1"), LinkFault::Cut);
        // Unregistered addresses sit in group 0: cut off from group 1.
        assert_eq!(a.link("d:4"), LinkFault::Cut);
        m.heal();
        assert_eq!(a.link("c:3"), LinkFault::Pass);
        assert_eq!(a.link("d:4"), LinkFault::Pass);
    }

    #[test]
    fn seeded_io_script_is_reproducible_and_exhausts_to_pass() {
        let a = ScriptedIoFaults::seeded(42, 200, 100);
        let b = ScriptedIoFaults::seeded(42, 200, 100);
        let draws_a: Vec<IoFault> = (0..250).map(|_| a.next_append("ds")).collect();
        let draws_b: Vec<IoFault> = (0..250).map(|_| b.next_append("ds")).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a[200..].iter().all(|f| *f == IoFault::Pass));
        // ~10% fault rate: expect at least a few faults in 200 draws.
        assert!(draws_a.iter().any(|f| *f != IoFault::Pass));
    }

    #[test]
    fn splitmix_differs_by_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
