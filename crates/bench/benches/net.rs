//! Wire-protocol throughput: frame encode, incremental decode (whole
//! buffer and pathological 1-byte chunks), and a full loopback
//! round-trip through the reactor — the cost floor under every
//! `lbc serve` deployment.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lbc_core::LbConfig;
use lbc_graph::generators;
use lbc_net::{FrameDecoder, NetClient, NetServer, Request, ServeContext, ServerConfig};
use lbc_runtime::{Query, Registry, WorkerPool};

fn query_mix(n: u32, count: usize) -> Vec<Query> {
    (0..count)
        .map(|i| {
            let u = ((i * 7919) % n as usize) as u32;
            let v = ((i * 104_729 + 13) % n as usize) as u32;
            match i % 4 {
                0 | 1 => Query::SameCluster(u, v),
                2 => Query::ClusterOf(u),
                _ => Query::ClusterSize(v),
            }
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_encode");
    for &batch in &[16usize, 256, 4096] {
        let req = Request::QueryBatch(query_mix(10_000, batch));
        let mut probe = Vec::new();
        req.encode(&mut probe, 0).unwrap();
        group.throughput(Throughput::Bytes(probe.len() as u64));
        group.bench_with_input(BenchmarkId::new("query_batch", batch), &req, |b, req| {
            let mut out = Vec::with_capacity(probe.len());
            b.iter(|| {
                out.clear();
                req.encode(&mut out, 7).unwrap();
                black_box(out.len())
            });
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_decode");
    for &batch in &[16usize, 256, 4096] {
        let req = Request::QueryBatch(query_mix(10_000, batch));
        let mut bytes = Vec::new();
        // A stream of 8 frames so buffer management is exercised.
        for id in 0..8 {
            req.encode(&mut bytes, id).unwrap();
        }
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("whole_buffer", batch),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let mut dec = FrameDecoder::new();
                    dec.push(bytes);
                    let mut frames = 0usize;
                    while let Some(f) = dec.next_frame().unwrap() {
                        frames += 1;
                        black_box(Request::from_frame(&f).unwrap());
                    }
                    assert_eq!(frames, 8);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("one_byte_chunks", batch),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let mut dec = FrameDecoder::new();
                    let mut frames = 0usize;
                    for &byte in bytes.iter() {
                        dec.push(std::slice::from_ref(&byte));
                        while let Some(f) = dec.next_frame().unwrap() {
                            frames += 1;
                            black_box(&f);
                        }
                    }
                    assert_eq!(frames, 8);
                });
            },
        );
    }
    group.finish();
}

fn bench_loopback(c: &mut Criterion) {
    let registry = Arc::new(Registry::with_capacity(4));
    let (g, _) = generators::regular_cluster_graph(4, 250, 12, 4, 5).unwrap();
    registry.insert_graph("bench", g);
    let ctx = ServeContext::new(
        registry,
        Arc::new(WorkerPool::new(2)),
        "bench",
        LbConfig::new(0.25, 120).with_seed(3),
    );
    let server = NetServer::bind("127.0.0.1:0", ctx, ServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.addr()).unwrap();

    let mut group = c.benchmark_group("net_loopback");
    for &batch in &[16usize, 256, 4096] {
        let qs = query_mix(1000, batch);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("round_trip", batch), &qs, |b, qs| {
            b.iter(|| black_box(client.query_batch(qs).unwrap().len()));
        });
    }
    group.finish();
    drop(client);
    server.shutdown();
}

criterion_group!(benches, bench_encode, bench_decode, bench_loopback);
criterion_main!(benches);
