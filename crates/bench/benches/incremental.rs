//! Dynamic-graph workload: warm-start re-clustering vs. a cold run on
//! `k`-edge-flip perturbations of a planted partition, sweeping `k`.
//!
//! Setup per `k`: cluster the pristine graph once (that output plays the
//! resident cache entry), build a `k`-flip [`lbc_graph::GraphDelta`]
//! (remove `k` intra-cluster edges, add `k` inter-cluster edges), patch
//! the graph. Then two arms:
//!
//! * `warm/k=K` — [`lbc_core::warm_start`] from the resident states on
//!   the patched graph (convergence-driven round count);
//! * `cold/k=K` — [`lbc_core::cluster`] from scratch on the patched
//!   graph (fixed `T` rounds).
//!
//! The interesting number besides wall-clock is **rounds to recovery**;
//! it is printed per `k` before the timed runs (criterion measures time,
//! not rounds). A third group, `csr_patch`, isolates the graph-layer
//! cost: `Graph::apply_delta` (touched-region rebuild) vs. a full
//! `Graph::from_edges` reconstruction of the same mutated edge set.

use criterion::{criterion_group, criterion_main, Criterion};
use lbc_core::{cluster, warm_start, LbConfig, WarmStartConfig};
use lbc_graph::generators::{k_edge_flip_delta, planted_partition_sparse};
use lbc_graph::Graph;

/// n = 10 000 in 4 blocks; ~24 intra / ~3 inter expected degree.
fn workload() -> (Graph, lbc_graph::Partition) {
    let block = 2500usize;
    let n = 4 * block;
    planted_partition_sparse(4, block, 24.0 / block as f64, 3.0 / n as f64, 7).unwrap()
}

const FLIP_SWEEP: &[usize] = &[1, 8, 64, 512];

fn bench_incremental(c: &mut Criterion) {
    let (g, truth) = workload();
    let cfg = LbConfig::new(0.25, 120).with_seed(3);
    let resident = cluster(&g, &cfg).unwrap();
    let wcfg = WarmStartConfig::default();

    let mut group = c.benchmark_group("incremental/n10000");
    for &k in FLIP_SWEEP {
        let delta = k_edge_flip_delta(&g, &truth, k, 11).unwrap();
        let patched = g.apply_delta(&delta).unwrap();

        // Rounds-to-recovery readout (untimed; the acceptance number).
        let probe = warm_start(&patched, &cfg, &resident, &delta, &wcfg).unwrap();
        eprintln!(
            "incremental: k = {k}: warm rounds-to-recovery = {} vs cold T = {} \
             (converged = {}, last movement = {:.2e})",
            probe.rounds_run,
            cfg.rounds.count(),
            probe.converged,
            probe.last_movement,
        );

        group.bench_function(format!("warm/k={k}"), |b| {
            b.iter(|| warm_start(&patched, &cfg, &resident, &delta, &wcfg).unwrap())
        });
        group.bench_function(format!("cold/k={k}"), |b| {
            b.iter(|| cluster(&patched, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_csr_patch(c: &mut Criterion) {
    let (g, truth) = workload();
    let mut group = c.benchmark_group("csr_patch/n10000");
    for &k in FLIP_SWEEP {
        let delta = k_edge_flip_delta(&g, &truth, k, 13).unwrap();
        let patched_edges: Vec<_> = g.apply_delta(&delta).unwrap().edges().collect();

        group.bench_function(format!("apply_delta/k={k}"), |b| {
            b.iter(|| g.apply_delta(&delta).unwrap())
        });
        group.bench_function(format!("from_edges/k={k}"), |b| {
            b.iter(|| Graph::from_edges(g.n(), &patched_edges).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental, bench_csr_patch);
criterion_main!(benches);
