//! Query-serving throughput of the resident engine (`lbc-runtime`).
//!
//! Measures (a) raw batched query execution against a cached clustering
//! at several batch sizes, and (b) the full multi-client closed loop the
//! `lbc serve-bench` subcommand runs, on pools of 1 / 2 / 4 threads.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lbc_core::LbConfig;
use lbc_graph::generators::regular_cluster_graph;
use lbc_runtime::{ClusterHandle, LoadgenConfig, Query, Registry};

fn cached_handle() -> ClusterHandle {
    let registry = Registry::with_capacity(2);
    let (g, _) = regular_cluster_graph(4, 250, 12, 4, 5).unwrap();
    registry.insert_graph("bench", g);
    let out = registry
        .get_or_cluster("bench", &LbConfig::new(0.25, 200).with_seed(3))
        .unwrap();
    ClusterHandle::new(out)
}

fn query_mix(n: usize, count: usize) -> Vec<Query> {
    (0..count)
        .map(|i| {
            let u = ((i * 7919) % n) as u32;
            let v = ((i * 104_729 + 13) % n) as u32;
            match i % 4 {
                0 | 1 => Query::SameCluster(u, v),
                2 => Query::ClusterOf(u),
                _ => Query::ClusterSize(v),
            }
        })
        .collect()
}

fn bench_batches(c: &mut Criterion) {
    let handle = cached_handle();
    let mut group = c.benchmark_group("serving_batch");
    for &batch in &[16usize, 256, 4096] {
        let queries = query_mix(handle.n(), batch);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::new("execute_batch", batch),
            &queries,
            |b, qs| b.iter(|| handle.execute_batch(qs).unwrap()),
        );
    }
    group.finish();
}

fn bench_closed_loop(c: &mut Criterion) {
    let handle = Arc::new(cached_handle());
    let mut group = c.benchmark_group("serving_closed_loop");
    group.sample_size(10);
    for &clients in &[1usize, 2, 4] {
        let cfg = LoadgenConfig {
            clients,
            total_ops: 100_000,
            batch: 64,
            seed: 7,
            ..Default::default()
        };
        group.throughput(Throughput::Elements(cfg.total_ops));
        group.bench_with_input(BenchmarkId::new("loadgen_100k", clients), &cfg, |b, cfg| {
            b.iter(|| lbc_runtime::run_loadgen(&handle, cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batches, bench_closed_loop);
criterion_main!(benches);
