//! Spectral substrate cost: Lanczos top-(k+1) eigensolve on clustered
//! graphs (the parameter-setting oracle) and the dense Jacobi reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbc_graph::generators::regular_cluster_graph;
use lbc_linalg::dense::DenseSym;
use lbc_linalg::jacobi::jacobi_eigen;
use lbc_linalg::lanczos::lanczos_top;
use lbc_linalg::ops::WalkOperator;

fn bench_eigensolver(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigensolver");
    group.sample_size(10);
    for &n in &[1_000usize, 4_000, 16_000] {
        let (g, _) = regular_cluster_graph(4, n / 4, 12, 4, 7).unwrap();
        group.bench_with_input(BenchmarkId::new("lanczos_top5", n), &n, |b, _| {
            b.iter(|| {
                let op = WalkOperator::new(&g);
                lanczos_top(&op, 5, 60, 3)
            })
        });
    }
    for &q in &[20usize, 60] {
        let mut a = DenseSym::zeros(q);
        for i in 0..q {
            for j in i..q {
                a.set(i, j, ((i * 31 + j * 17) % 13) as f64 / 13.0);
            }
        }
        group.bench_with_input(BenchmarkId::new("jacobi_dense", q), &q, |b, _| {
            b.iter(|| jacobi_eigen(&a, 100, 1e-12))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eigensolver);
criterion_main!(benches);
