//! End-to-end clustering across graph sizes (the headline cost of the
//! centralised variant), plus the distributed deployment at one size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbc_core::{cluster, cluster_distributed, LbConfig};
use lbc_graph::generators::regular_cluster_graph;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_end_to_end");
    group.sample_size(10);
    for &n in &[1_000usize, 4_000, 16_000] {
        let (g, _) = regular_cluster_graph(4, n / 4, 12, 4, 5).unwrap();
        let cfg = LbConfig::new(0.25, 200).with_seed(3);
        group.bench_with_input(BenchmarkId::new("centralised_T200", n), &n, |b, _| {
            b.iter(|| cluster(&g, &cfg).unwrap())
        });
    }
    let (g, _) = regular_cluster_graph(4, 500, 12, 4, 5).unwrap();
    let cfg = LbConfig::new(0.25, 100).with_seed(3);
    group.bench_function("distributed_2k_T100", |b| {
        b.iter(|| cluster_distributed(&g, &cfg, None).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
