//! Matching generation throughput: one round of the distributed matching
//! protocol (activation + proposal + acceptance) sampled centrally.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lbc_core::matching::{sample_matching, ProposalRule};
use lbc_distsim::NodeRng;
use lbc_graph::generators::{random_regular, regular_cluster_graph};

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_matching");
    for &n in &[1_000usize, 10_000, 100_000] {
        let g = random_regular(n, 8, 42).unwrap();
        let mut rngs: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(7, v)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("regular_d8", n), &n, |b, _| {
            b.iter(|| sample_matching(&g, ProposalRule::Uniform, &mut rngs))
        });
    }
    // Capped (G*) rule on an irregular clustered graph.
    let (g, _) = regular_cluster_graph(4, 2_500, 12, 4, 3).unwrap();
    let n = g.n();
    let cap = g.max_degree();
    let mut rngs: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(9, v)).collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("capped_cluster_graph_10k", |b| {
        b.iter(|| sample_matching(&g, ProposalRule::Capped(cap), &mut rngs))
    });
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
