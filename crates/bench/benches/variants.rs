//! Timing of the algorithm variants and auxiliary gossip processes:
//! discrete tokens vs continuous, async vs sync, rumour spreading, and
//! distributed size estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbc_core::gossip::rumour_spread;
use lbc_core::matching::ProposalRule;
use lbc_core::{cluster, cluster_async, cluster_discrete, estimate_size, LbConfig};
use lbc_graph::generators::regular_cluster_graph;

fn bench_variants(c: &mut Criterion) {
    let (g, _) = regular_cluster_graph(4, 500, 12, 4, 23).unwrap();
    let t = 150usize;
    let cfg = LbConfig::new(0.25, t).with_seed(3);
    let mut group = c.benchmark_group("variants_2k_nodes");
    group.sample_size(10);
    group.bench_function("continuous_sync", |b| b.iter(|| cluster(&g, &cfg).unwrap()));
    group.bench_function("async_equal_budget", |b| {
        b.iter(|| cluster_async(&g, &cfg, g.n() * t / 4).unwrap())
    });
    for &res in &[64u64, 1 << 20] {
        group.bench_with_input(BenchmarkId::new("discrete_tokens", res), &res, |b, &r| {
            b.iter(|| cluster_discrete(&g, &cfg, r).unwrap())
        });
    }
    group.bench_function("rumour_spread_full", |b| {
        b.iter(|| rumour_spread(&g, ProposalRule::Uniform, 0, 100_000, 7))
    });
    group.bench_function("size_estimation_k64", |b| {
        b.iter(|| estimate_size(&g, ProposalRule::Uniform, 64, 120, 9))
    });
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
