//! Persistence workload: snapshot write/read throughput, and warm boot
//! from the store vs a cold re-cluster — the acceptance numbers for the
//! `lbc-store` subsystem at n = 10 000 (the `incremental` bench's
//! planted-partition workload, `T = 120`).
//!
//! Arms:
//!
//! * `snapshot_write` — serialise graph CSR + one cached output to disk
//!   (write-to-temp + rename, checksummed);
//! * `snapshot_read` — parse the snapshot back (no replay);
//! * `warm_boot` — [`lbc_store::Store::load`] with an empty WAL: the
//!   full restart path a server pays before serving, zero warm rounds;
//! * `wal_replay_boot` — the crash path: snapshot + an 8-flip delta
//!   record, replayed through the deterministic warm start;
//! * `cold_recluster` — [`lbc_core::cluster`] from scratch, what a
//!   store-less restart pays per `(graph, config)` pair.
//!
//! An untimed probe prints snapshot size, write/read MB/s, and the
//! warm-boot vs cold wall-clock ratio (the ISSUE acceptance bar is
//! warm boot ≥ 3× faster than cold).

use criterion::{criterion_group, criterion_main, Criterion};
use lbc_core::{cluster, LbConfig, WarmStartConfig};
use lbc_graph::generators::{k_edge_flip_delta, planted_partition_sparse};
use lbc_store::{ReplayPolicy, Store};

/// n = 10 000 in 4 blocks; ~24 intra / ~3 inter expected degree (same
/// workload as the `incremental` bench).
fn workload() -> (lbc_graph::Graph, lbc_graph::Partition) {
    let block = 2500usize;
    let n = 4 * block;
    planted_partition_sparse(4, block, 24.0 / block as f64, 3.0 / n as f64, 7).unwrap()
}

fn bench_persistence(c: &mut Criterion) {
    let (g, truth) = workload();
    let cfg = LbConfig::new(0.25, 120).with_seed(3);
    let resident = cluster(&g, &cfg).unwrap();

    let dir = std::env::temp_dir().join(format!("lbc-persistence-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    store.save("pp", &g, [(&cfg, &resident)], 0).unwrap();

    // A crash-shaped sibling: same snapshot plus one 8-flip WAL record.
    store.save("pp-wal", &g, [(&cfg, &resident)], 0).unwrap();
    let delta = k_edge_flip_delta(&g, &truth, 8, 11).unwrap();
    store
        .append_delta(
            "pp-wal",
            &ReplayPolicy::WarmRefresh(WarmStartConfig::default()),
            &delta,
        )
        .unwrap();

    // Untimed probe: sizes, throughput, and the warm-vs-cold ratio.
    let snap_bytes = store.snapshot_bytes("pp");
    let t0 = std::time::Instant::now();
    let (_state, report) = store.load("pp").unwrap();
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.warm_rounds, 0, "clean snapshot must boot cold-free");
    let t1 = std::time::Instant::now();
    let _ = cluster(&g, &cfg).unwrap();
    let cold_ms = t1.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "persistence: snapshot = {snap_bytes} bytes ({:.1} MB); \
         warm boot {warm_ms:.1} ms vs cold re-cluster {cold_ms:.1} ms ({:.1}x)",
        snap_bytes as f64 / 1e6,
        cold_ms / warm_ms.max(1e-9),
    );

    let mut group = c.benchmark_group("persistence/n10000");
    group.bench_function("snapshot_write", |b| {
        b.iter(|| store.save("pp", &g, [(&cfg, &resident)], 0).unwrap())
    });
    group.bench_function("snapshot_read", |b| {
        b.iter(|| store.load_raw("pp").unwrap())
    });
    group.bench_function("warm_boot", |b| b.iter(|| store.load("pp").unwrap()));
    group.bench_function("wal_replay_boot", |b| {
        b.iter(|| store.load("pp-wal").unwrap())
    });
    group.bench_function("cold_recluster", |b| b.iter(|| cluster(&g, &cfg).unwrap()));
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
