//! Observability hot-path costs: histogram record (the per-request tax
//! every instrumented loop pays), contended multi-thread record,
//! counter increment, snapshot + quantile extraction, and the event
//! ring — the numbers behind the "metrics stay out of the fast path"
//! claim.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lbc_obs::{EventKind, EventRing, Histogram, Obs};

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_record");
    group.throughput(Throughput::Elements(1));

    let hist = Histogram::new();
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    group.bench_function(BenchmarkId::new("histogram", "1thread"), |b| {
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(black_box((x >> 33) % 50_000_000));
        })
    });

    let obs = Obs::new();
    let ctr = obs.counter("bench_ops_total");
    group.bench_function(BenchmarkId::new("counter", "inc"), |b| b.iter(|| ctr.inc()));

    // Handle lookup by name is the cold path; measured so a caller who
    // mistakenly looks up per-record sees what that costs vs. `inc`.
    group.bench_function(BenchmarkId::new("counter", "lookup_and_inc"), |b| {
        b.iter(|| obs.counter("bench_ops_total").inc())
    });
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_contended");
    for &threads in &[2usize, 8] {
        let per_thread = 200_000u64;
        group.throughput(Throughput::Elements(per_thread * threads as u64));
        group.bench_with_input(
            BenchmarkId::new("histogram_record", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let hist = Arc::new(Histogram::new());
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let hist = Arc::clone(&hist);
                            s.spawn(move || {
                                let mut x = 0xDEAD_BEEFu64 ^ (t as u64) << 32;
                                for _ in 0..per_thread {
                                    x = x
                                        .wrapping_mul(6364136223846793005)
                                        .wrapping_add(1442695040888963407);
                                    hist.record((x >> 33) % 50_000_000);
                                }
                            });
                        }
                    });
                    black_box(hist.snapshot().count)
                })
            },
        );
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_snapshot");
    let hist = Histogram::new();
    let mut x = 7u64;
    for _ in 0..1_000_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        hist.record((x >> 33) % 50_000_000);
    }
    group.bench_function(BenchmarkId::new("histogram", "snapshot"), |b| {
        b.iter(|| black_box(hist.snapshot().count))
    });
    let snap = hist.snapshot();
    group.bench_function(BenchmarkId::new("histogram", "quantiles"), |b| {
        b.iter(|| {
            black_box(snap.quantile(0.50));
            black_box(snap.quantile(0.95));
            black_box(snap.quantile(0.99))
        })
    });
    group.finish();
}

fn bench_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_events");
    group.throughput(Throughput::Elements(1));
    let ring = EventRing::new(256);
    group.bench_function(BenchmarkId::new("ring", "record"), |b| {
        b.iter(|| ring.record(EventKind::Eviction, "dataset bench seed 7"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_record,
    bench_contended,
    bench_snapshot,
    bench_events
);
criterion_main!(benches);
