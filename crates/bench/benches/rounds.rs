//! Averaging-round throughput: the pre-refactor `Vec<LoadState>` path
//! (fresh matching buffers + allocating merges) against the flat
//! [`StateArena`] + [`MatchingScratch`] path, per round, across the
//! three main graph families at n ∈ {10k, 100k}.
//!
//! One benchmark iteration = one full averaging round (sample a matching,
//! merge every matched pair). Both paths replay identical per-node
//! random streams, so they do identical logical work — the measured gap
//! is pure representation and allocator traffic. Throughput is reported
//! as matched-pairs/s (`elem/s`, using the measured mean pairs per
//! round); rounds/s is the reciprocal of the mean iteration time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lbc_core::matching::{sample_matching_into, MatchingScratch, ProposalRule};
use lbc_core::{run_seeding, LoadState, StateArena};
use lbc_distsim::NodeRng;
use lbc_graph::{generators, Graph, NodeId};

/// The seed implementation's matching sampler, reproduced verbatim
/// (five fresh `n`-sized buffers per call) so the pre-refactor round
/// loop stays measurable after the refactor. Consumes the same random
/// draws as `sample_matching_into` and returns the same partner array.
fn sample_matching_reference(
    g: &Graph,
    rule: ProposalRule,
    rngs: &mut [NodeRng],
) -> Vec<Option<NodeId>> {
    let n = g.n();
    let mut active = vec![false; n];
    let mut proposal: Vec<Option<NodeId>> = vec![None; n];
    for v in 0..n {
        let (a, target) = rule.draw(g.neighbours(v as NodeId), &mut rngs[v]);
        active[v] = a;
        proposal[v] = target;
    }
    let mut proposals_received = vec![0u32; n];
    let mut proposer_of: Vec<NodeId> = vec![0; n];
    for (u, &t) in proposal.iter().enumerate() {
        if let Some(t) = t {
            proposals_received[t as usize] += 1;
            proposer_of[t as usize] = u as NodeId;
        }
    }
    let mut partner: Vec<Option<NodeId>> = vec![None; n];
    for v in 0..n {
        if !active[v] && proposals_received[v] == 1 {
            let u = proposer_of[v];
            partner[v] = Some(u);
            partner[u as usize] = Some(v as NodeId);
        }
    }
    partner
}

const SEEDING_TRIALS: usize = 17; // s̄ for β = 1/4
const WARMUP_ROUNDS: usize = 150; // saturate state sizes before timing

fn families(n: usize) -> Vec<(&'static str, Graph)> {
    let quarter = n / 4;
    vec![
        (
            "ring_of_cliques",
            generators::ring_of_cliques(n / 100, 100, 0).unwrap().0,
        ),
        (
            "planted_partition",
            generators::planted_partition_sparse(
                4,
                quarter,
                48.0 / quarter as f64,
                2.0 / n as f64,
                1,
            )
            .unwrap()
            .0,
        ),
        (
            "random_regular",
            generators::random_regular(n, 8, 1).unwrap(),
        ),
    ]
}

fn rngs_for(n: usize, seed: u64) -> Vec<NodeRng> {
    (0..n as u32).map(|v| NodeRng::for_node(seed, v)).collect()
}

fn rule_for(g: &Graph) -> ProposalRule {
    // Mirror `LbConfig`'s auto degree mode.
    if g.is_regular() {
        ProposalRule::Uniform
    } else {
        ProposalRule::Capped(g.max_degree().max(1))
    }
}

fn bench_rounds(c: &mut Criterion) {
    for &n in &[10_000usize, 100_000] {
        for (family, g) in families(n) {
            let rule = rule_for(&g);
            let mut group = c.benchmark_group(&format!("rounds/{family}/n{n}"));

            // Mean matched pairs per round (for the pairs/s readout),
            // measured over a few untimed rounds.
            let mut probe_rngs = rngs_for(n, 3);
            let mut probe = MatchingScratch::new(n);
            let mut pairs = 0usize;
            for _ in 0..10 {
                sample_matching_into(&g, rule, &mut probe_rngs, &mut probe);
                pairs += probe.matched_pairs();
            }
            group.throughput(Throughput::Elements((pairs / 10).max(1) as u64));

            // Pre-refactor path: allocating sampler + allocating merges.
            {
                let mut rngs = rngs_for(n, 3);
                let seeds = run_seeding(n, SEEDING_TRIALS, &mut rngs);
                assert!(!seeds.is_empty());
                let mut states: Vec<LoadState> = vec![LoadState::empty(); n];
                for s in &seeds {
                    states[s.node as usize] = LoadState::seed(s.id);
                }
                let mut old_round = || {
                    let partner = sample_matching_reference(&g, rule, &mut rngs);
                    let pairs = partner
                        .iter()
                        .enumerate()
                        .filter_map(|(u, &p)| p.map(|v| (u as NodeId, v)))
                        .filter(|&(u, v)| u < v);
                    for (u, v) in pairs {
                        let merged = LoadState::average(&states[u as usize], &states[v as usize]);
                        states[u as usize] = merged.clone();
                        states[v as usize] = merged;
                    }
                };
                for _ in 0..WARMUP_ROUNDS {
                    old_round();
                }
                group.bench_function("load_state", |b| b.iter(&mut old_round));
            }

            // Arena path: reusable matching scratch + in-place merges,
            // replaying the identical random streams.
            {
                let mut rngs = rngs_for(n, 3);
                let seeds = run_seeding(n, SEEDING_TRIALS, &mut rngs);
                let mut arena = StateArena::new(n, &seeds);
                let mut scratch = MatchingScratch::new(n);
                let mut arena_round = || {
                    sample_matching_into(&g, rule, &mut rngs, &mut scratch);
                    arena.average_matched(&scratch);
                };
                for _ in 0..WARMUP_ROUNDS {
                    arena_round();
                }
                group.bench_function("arena", |b| b.iter(&mut arena_round));
            }

            group.finish();
        }
    }
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
