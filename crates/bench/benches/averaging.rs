//! One averaging round: sparse per-node states versus the dense matrix
//! view, at realistic seed counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbc_core::matching::{apply_matching_dense, sample_matching, ProposalRule};
use lbc_core::LoadState;
use lbc_distsim::NodeRng;
use lbc_graph::generators::random_regular;

fn bench_averaging(c: &mut Criterion) {
    let n = 10_000usize;
    let g = random_regular(n, 8, 1).unwrap();
    let mut group = c.benchmark_group("averaging_round");
    for &s in &[4usize, 16, 64] {
        // Sparse: states with s entries each (worst case: fully spread).
        let state =
            LoadState::from_entries((0..s as u64).map(|i| (i + 1, 1.0 / s as f64)).collect());
        let states: Vec<LoadState> = vec![state; n];
        let mut rngs: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(3, v)).collect();
        group.bench_with_input(BenchmarkId::new("sparse_10k", s), &s, |b, _| {
            b.iter(|| {
                let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
                let mut st = states.clone();
                for (u, v) in m.pairs() {
                    let merged = LoadState::average(&st[u as usize], &st[v as usize]);
                    st[u as usize] = merged.clone();
                    st[v as usize] = merged;
                }
                st
            })
        });
        // Dense: s whole vectors.
        let vectors: Vec<Vec<f64>> = (0..s).map(|_| vec![1.0 / n as f64; n]).collect();
        let mut rngs2: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(5, v)).collect();
        group.bench_with_input(BenchmarkId::new("dense_10k", s), &s, |b, _| {
            b.iter(|| {
                let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs2);
                let mut vs = vectors.clone();
                for x in &mut vs {
                    apply_matching_dense(&m, x);
                }
                vs
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_averaging);
criterion_main!(benches);
