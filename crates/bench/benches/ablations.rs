//! Ablation timings: proposal rule (uniform vs G*-capped), query rule,
//! and seeding-trial multiplier. Complements the accuracy ablations in
//! `expt_ablation_query` and E6.

use criterion::{criterion_group, criterion_main, Criterion};
use lbc_core::{cluster, DegreeMode, LbConfig, QueryRule};
use lbc_graph::generators::regular_cluster_graph;

fn bench_ablations(c: &mut Criterion) {
    let (g, _) = regular_cluster_graph(4, 500, 12, 4, 13).unwrap();
    let cap = g.max_degree();
    let mut group = c.benchmark_group("ablations_2k_nodes");
    group.sample_size(10);

    let base = LbConfig::new(0.25, 150).with_seed(3);
    group.bench_function("proposal_uniform", |b| {
        let cfg = base.clone().with_degree_mode(DegreeMode::Regular);
        b.iter(|| cluster(&g, &cfg).unwrap())
    });
    group.bench_function("proposal_capped", |b| {
        let cfg = base.clone().with_degree_mode(DegreeMode::Capped(cap));
        b.iter(|| cluster(&g, &cfg).unwrap())
    });
    group.bench_function("query_paper_threshold", |b| {
        let cfg = base.clone().with_query(QueryRule::PaperThreshold);
        b.iter(|| cluster(&g, &cfg).unwrap())
    });
    group.bench_function("query_argmax", |b| {
        let cfg = base.clone().with_query(QueryRule::ArgMax);
        b.iter(|| cluster(&g, &cfg).unwrap())
    });
    group.bench_function("seeding_trials_2x", |b| {
        let cfg = base.clone().with_seeding_trials(2 * base.trials());
        b.iter(|| cluster(&g, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
