//! Wall-clock comparison of all clustering methods on one mid-size
//! well-clustered instance (the timing companion to experiment E4).

use criterion::{criterion_group, criterion_main, Criterion};
use lbc_baselines::{becchetti_averaging, label_propagation, spectral_clustering};
use lbc_core::{cluster, LbConfig};
use lbc_graph::generators::regular_cluster_graph;

fn bench_baselines(c: &mut Criterion) {
    let (g, _) = regular_cluster_graph(4, 1_000, 12, 4, 11).unwrap();
    let mut group = c.benchmark_group("methods_4k_nodes");
    group.sample_size(10);
    let cfg = LbConfig::new(0.25, 200).with_seed(3);
    group.bench_function("load_balancing_T200", |b| {
        b.iter(|| cluster(&g, &cfg).unwrap())
    });
    group.bench_function("spectral_k4", |b| b.iter(|| spectral_clustering(&g, 4, 5)));
    group.bench_function("averaging_dynamics_T200_h6", |b| {
        b.iter(|| becchetti_averaging(&g, 4, 200, 6, 9))
    });
    group.bench_function("label_propagation", |b| {
        b.iter(|| label_propagation(&g, 100))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
