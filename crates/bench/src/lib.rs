//! Shared helpers for the experiment regenerators (`src/bin/expt_*.rs`)
//! and Criterion benches.
//!
//! Every experiment binary prints a self-contained table; EXPERIMENTS.md
//! records one captured run of each next to the paper's corresponding
//! claim.

use lbc_core::{cluster, LbConfig};
use lbc_eval::accuracy;
use lbc_graph::{Graph, Partition};

/// Mean and (population) standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Run the centralised algorithm `reps` times with seeds `base_seed..`
/// and return the accuracies against `truth`.
pub fn accuracy_over_seeds(
    graph: &Graph,
    truth: &Partition,
    cfg: &LbConfig,
    reps: u64,
    base_seed: u64,
) -> Vec<f64> {
    (0..reps)
        .map(|r| {
            let c = cfg.clone().with_seed(base_seed + r);
            match cluster(graph, &c) {
                Ok(out) => accuracy(truth.labels(), out.partition.labels()),
                Err(_) => 0.0, // seedless run counts as total failure
            }
        })
        .collect()
}

/// Standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("claim: {claim}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn accuracy_over_seeds_runs() {
        let (g, truth) = generators::ring_of_cliques(2, 10, 0).unwrap();
        let cfg = LbConfig::new(0.5, 30);
        let accs = accuracy_over_seeds(&g, &truth, &cfg, 3, 100);
        assert_eq!(accs.len(), 3);
        assert!(accs.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }
}
