//! Extension — algorithm variants at comparable budgets:
//!
//! * synchronous continuous (the paper's algorithm),
//! * asynchronous pairwise gossip (Boyd et al. time model),
//! * discrete indivisible tokens at several resolutions
//!   (randomised-rounding splits),
//! * multiple-random-walk sampling (the Monte-Carlo analogue).
//!
//! All share the same seeds and the same instance; the table shows how
//! the communication *model* and load *granularity* affect recovery.

use lbc_baselines::walk_clustering;
use lbc_bench::banner;
use lbc_core::{cluster, cluster_async, cluster_discrete, LbConfig};
use lbc_eval::accuracy;
use lbc_graph::generators::regular_cluster_graph;

fn main() {
    banner(
        "EXT: variants at comparable budgets",
        "continuous sync vs async gossip vs discrete tokens vs walk sampling",
    );
    let (g, truth) = regular_cluster_graph(4, 128, 12, 3, 21).expect("generator");
    let t = 200usize;
    let cfg = LbConfig::new(0.25, t).with_seed(7);
    println!("instance: n = {}, m = {}, k = 4; T = {t}", g.n(), g.m());
    println!();
    println!("{:<34} {:>10}", "variant", "accuracy");

    let sync = cluster(&g, &cfg).expect("sync");
    println!(
        "{:<34} {:>10.4}",
        "synchronous continuous (paper)",
        accuracy(truth.labels(), sync.partition.labels())
    );

    for &mult in &[1usize, 2, 4] {
        let ticks = g.n() * t * mult / 4; // ≈ d̄/4-adjusted exchange budget
        let out = cluster_async(&g, &cfg, ticks).expect("async");
        println!(
            "{:<34} {:>10.4}",
            format!("async gossip ({ticks} ticks)"),
            accuracy(truth.labels(), out.partition.labels())
        );
    }

    for &res in &[4u64, 64, 1 << 12, 1 << 20] {
        let out = cluster_discrete(&g, &cfg, res).expect("discrete");
        println!(
            "{:<34} {:>10.4}",
            format!("discrete tokens (Φ = {res})"),
            accuracy(truth.labels(), out.partition.labels())
        );
    }

    // Walk sampling from the same seeds, at a few sampling budgets.
    let seeds: Vec<u32> = sync.seeds.iter().map(|s| s.node).collect();
    for &walks in &[8usize, 64, 512] {
        let out = walk_clustering(&g, &seeds, walks, t, 0.004, 5);
        println!(
            "{:<34} {:>10.4}",
            format!("walk sampling (R = {walks}/seed)"),
            accuracy(truth.labels(), out.partition.labels())
        );
    }
    println!();
    println!("expected shape: sync and async agree at matched budgets; discrete tokens");
    println!("converge to the continuous result as Φ grows (quantisation floor at tiny Φ);");
    println!("walk sampling needs large R to match the averaging process — averaging is");
    println!("the variance-free version of the same spectral object (Lemma 2.1).");
}
