//! E11 — §1.3 vs Kempe–McSherry \[21\]: decentralised spectral analysis
//! needs rounds proportional to the *global* mixing time, which is
//! polynomial on multi-expander graphs with thin cuts; the
//! load-balancing algorithm needs only `T = Θ(log n / (1 − λ_{k+1}))`,
//! which never degrades as the cut thins (it *improves*: the clusters
//! separate more cleanly).
//!
//! Sweep the bridge width of a two-expander dumbbell and compare our
//! round count `T` against KM's charged rounds `iterations · (1 + τ_mix)`.

use lbc_baselines::kempe_mcsherry;
use lbc_bench::banner;
use lbc_core::{cluster, LbConfig};
use lbc_eval::accuracy;
use lbc_graph::generators::dumbbell;
use lbc_linalg::spectral::SpectralOracle;

fn main() {
    banner(
        "E11: rounds vs decentralised spectral (Kempe–McSherry)",
        "§1.3 — KM pays Θ(τ_mix) per iteration (poly(n) on thin cuts); ours stays polylog",
    );
    println!(
        "{:>8} {:>10} {:>10} {:>8} {:>10} {:>12} {:>10} {:>10}",
        "bridges", "gap(k+1)", "gap(2)", "T ours", "τ_mix", "KM rounds", "acc ours", "acc KM"
    );
    let half = 256usize;
    for &bridges in &[64usize, 16, 4, 1] {
        let (g, truth) = dumbbell(half, 10, bridges, 7).expect("generator");
        let oracle = SpectralOracle::compute(&g, 3, 3);
        let cfg = LbConfig::from_graph(&g, 0.5).with_seed(13);
        let ours = cluster(&g, &cfg).expect("clustering");
        let acc_ours = accuracy(truth.labels(), ours.partition.labels());
        let km = kempe_mcsherry(&g, 2, 40, 5);
        let acc_km = accuracy(truth.labels(), km.partition.labels());
        println!(
            "{:>8} {:>10.5} {:>10.6} {:>8} {:>10} {:>12} {:>10.4} {:>10.4}",
            bridges,
            oracle.gap(2),
            1.0 - oracle.lambda(2),
            cfg.rounds.count(),
            km.tau_mix,
            km.charged_rounds,
            acc_ours,
            acc_km
        );
    }
    println!();
    println!("expected shape: as the bridge thins, τ_mix (and hence KM's charged rounds)");
    println!("blows up by orders of magnitude while our T stays flat or shrinks — both");
    println!("methods remain accurate, but the communication-round separation is the");
    println!("paper's §1.3 point.");
}
