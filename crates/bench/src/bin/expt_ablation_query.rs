//! Ablation — query rules (§3.1 vs practical alternatives).
//!
//! The paper's rule (min seed ID above `1/(√(2β)n)`) merges multiple
//! seeds landing in the same cluster (they all clear the threshold, the
//! min ID wins everywhere). ArgMax instead splits such clusters between
//! their seeds (higher k_found, lower permutation accuracy, but pure
//! clusters). Scaled thresholds interpolate.

use lbc_bench::{banner, mean_std};
use lbc_core::{cluster, LbConfig, QueryRule};
use lbc_eval::{accuracy, normalized_mutual_information, PartitionReport};
use lbc_graph::generators::planted_partition;

fn main() {
    banner(
        "Ablation: query rules",
        "paper threshold merges multi-seeded clusters; argmax splits them",
    );
    let (g, truth) = planted_partition(4, 250, 0.06, 0.002, 19).expect("generator");
    let base = LbConfig::from_graph(&g, truth.beta());
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "rule", "accuracy", "NMI", "k_found"
    );
    let rules: [(&str, QueryRule); 5] = [
        ("paper 1/(sqrt(2β)n)", QueryRule::PaperThreshold),
        ("scaled c=0.5", QueryRule::ScaledThreshold(0.5)),
        ("scaled c=1.0", QueryRule::ScaledThreshold(1.0)),
        ("scaled c=2.0", QueryRule::ScaledThreshold(2.0)),
        ("argmax", QueryRule::ArgMax),
    ];
    for (name, rule) in rules {
        let mut accs = Vec::new();
        let mut nmis = Vec::new();
        let mut kf = Vec::new();
        for rep in 0..3u64 {
            let cfg = base.clone().with_seed(900 + rep).with_query(rule);
            if let Ok(out) = cluster(&g, &cfg) {
                accs.push(accuracy(truth.labels(), out.partition.labels()));
                nmis.push(normalized_mutual_information(
                    truth.labels(),
                    out.partition.labels(),
                ));
                kf.push(PartitionReport::evaluate(&g, &truth, &out.partition).k_found as f64);
            }
        }
        println!(
            "{:<26} {:>10.4} {:>10.4} {:>10.1}",
            name,
            mean_std(&accs).0,
            mean_std(&nmis).0,
            mean_std(&kf).0
        );
    }
    println!();
    println!("expected shape: the paper threshold and argmax agree on well-separated");
    println!("clusters. A threshold set too LOW is catastrophic: the min-ID rule then");
    println!("fires on leaked cross-cluster load and collapses everything onto the");
    println!("globally smallest seed ID (k_found → 1). k_found can exceed k by a few");
    println!("small satellite labels from threshold abstainers (argmax fallback).");
}
