//! E4 — positioning against related work (§1.3): accuracy *and*
//! communication versus spectral clustering, averaging dynamics
//! (Becchetti et al. style), and label propagation.
//!
//! Expected shape from the paper's discussion: spectral is the accuracy
//! gold standard but centralised (no message count — it needs the global
//! graph); averaging dynamics is accurate but ships `Θ(m)` messages per
//! round (expensive on dense graphs); the load-balancing algorithm gets
//! comparable accuracy at `O(n·s)` words per round; label propagation is
//! cheap but brittle as the cut densifies.

use lbc_baselines::{becchetti_averaging, label_propagation, spectral_clustering};
use lbc_bench::banner;
use lbc_core::{cluster_distributed, LbConfig};
use lbc_eval::accuracy;
use lbc_graph::generators::planted_partition;

fn main() {
    banner(
        "E4: baseline comparison",
        "§1.3 — comparable accuracy to spectral/averaging at a fraction of the words",
    );
    let k = 3usize;
    let block = 300usize;
    for &p_out in &[0.001, 0.004, 0.012] {
        let (g, truth) = planted_partition(k, block, 0.06, p_out, 41).expect("generator");
        println!(
            "--- p_in = 0.06, p_out = {p_out} (n = {}, m = {}) ---",
            g.n(),
            g.m()
        );
        println!("{:<24} {:>10} {:>16}", "method", "accuracy", "words");
        let cfg = LbConfig::from_graph(&g, truth.beta()).with_seed(5);
        match cluster_distributed(&g, &cfg, None) {
            Ok((out, stats)) => println!(
                "{:<24} {:>10.4} {:>16}",
                "load-balancing (ours)",
                accuracy(truth.labels(), out.partition.labels()),
                stats.sent_words
            ),
            Err(e) => println!("{:<24} failed: {e}", "load-balancing (ours)"),
        }
        let sp = spectral_clustering(&g, k, 3);
        println!(
            "{:<24} {:>10.4} {:>16}",
            "spectral (centralised)",
            accuracy(truth.labels(), sp.labels()),
            "- (global)"
        );
        let av = becchetti_averaging(&g, k, cfg.rounds.count(), 6, 9);
        println!(
            "{:<24} {:>10.4} {:>16}",
            "averaging dynamics",
            accuracy(truth.labels(), av.partition.labels()),
            av.words
        );
        let (lp, _) = label_propagation(&g, 100);
        println!(
            "{:<24} {:>10.4} {:>16}",
            "label propagation",
            accuracy(truth.labels(), lp.labels()),
            "~2m/round"
        );
        println!();
    }
    println!("expected shape: ours ≈ spectral ≈ averaging on accuracy while the cut is");
    println!("sparse, with ours shipping ~10x fewer words than averaging dynamics;");
    println!("label propagation collapses first as p_out grows.");
}
