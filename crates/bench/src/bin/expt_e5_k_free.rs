//! E5 — the algorithm does not need `k` (§3.2 remark): a lower bound `β`
//! on the balance suffices.
//!
//! We fix `β = 0.1` (pessimistic — true clusters are larger) and sweep
//! the *actual* number of planted clusters. The seeding, averaging, and
//! query procedures never see `k`; recovery should hold across the
//! sweep, with the number of discovered clusters tracking the truth.

use lbc_bench::{banner, mean_std};
use lbc_core::{cluster, LbConfig};
use lbc_eval::{accuracy, PartitionReport};
use lbc_graph::generators::regular_cluster_graph;

fn main() {
    banner(
        "E5: k-free operation",
        "§3.2 — only β is needed; the algorithm adapts to the true k on its own",
    );
    println!(
        "{:>4} {:>8} {:>6} {:>10} {:>10} {:>10} {:>8}",
        "k", "n", "T", "acc(mean)", "acc(std)", "k_found", "seeds"
    );
    let n = 1200usize;
    let beta_bound = 0.1; // deliberately below every true cluster fraction
    for &k in &[2usize, 3, 4, 6, 8] {
        let block = n / k; // even for all k in the sweep
                           // Near-regular clusters with a k-independent per-cluster cut, so
                           // the sweep isolates the k-free property from gap degradation.
        let (g, truth) = regular_cluster_graph(k, block, 12, 3, 71 + k as u64).expect("generator");
        let cfg = LbConfig::from_graph(&g, beta_bound);
        let mut accs = Vec::new();
        let mut k_founds = Vec::new();
        let mut seed_counts = Vec::new();
        for rep in 0..3u64 {
            let c = cfg.clone().with_seed(500 + rep);
            match cluster(&g, &c) {
                Ok(out) => {
                    accs.push(accuracy(truth.labels(), out.partition.labels()));
                    let report = PartitionReport::evaluate(&g, &truth, &out.partition);
                    k_founds.push(report.k_found as f64);
                    seed_counts.push(out.seeds.len() as f64);
                }
                Err(_) => accs.push(0.0),
            }
        }
        let (acc_m, acc_s) = mean_std(&accs);
        let (kf, _) = mean_std(&k_founds);
        let (sc, _) = mean_std(&seed_counts);
        println!(
            "{:>4} {:>8} {:>6} {:>10.4} {:>10.4} {:>10.1} {:>8.1}",
            k,
            g.n(),
            cfg.rounds.count(),
            acc_m,
            acc_s,
            kf,
            sc
        );
    }
    println!();
    println!("expected shape: accuracy stays high for every true k under the single β;");
    println!("k_found tracks k (merged labels per cluster via the min-ID query rule).");
}
