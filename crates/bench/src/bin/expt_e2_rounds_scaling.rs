//! E2 — round complexity: `T = Θ(log n / (1 − λ_{k+1}))`.
//!
//! Workload: near-regular cluster graphs with fixed per-cluster degree
//! and cut (so the spectral gap is n-independent), doubling `n`. We
//! measure the number of averaging rounds until the labelling first
//! reaches 95% accuracy; the claim predicts growth ∝ log n, i.e. a
//! constant `rounds / ln n` column.

use lbc_bench::banner;
use lbc_core::matching::sample_matching;
use lbc_core::query::assign_labels;
use lbc_core::seeding::run_seeding;
use lbc_core::{LbConfig, LoadState, QueryRule};
use lbc_distsim::NodeRng;
use lbc_eval::accuracy;
use lbc_graph::generators::regular_cluster_graph;

fn rounds_to_accuracy(
    g: &lbc_graph::Graph,
    truth: &lbc_graph::Partition,
    beta: f64,
    seed: u64,
    target: f64,
    max_rounds: usize,
) -> Option<usize> {
    let n = g.n();
    let cfg = LbConfig::new(beta, 1).with_seed(seed);
    let mut rngs: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(seed, v)).collect();
    let seeds = run_seeding(n, cfg.trials(), &mut rngs);
    if seeds.is_empty() {
        return None;
    }
    let mut states: Vec<LoadState> = vec![LoadState::empty(); n];
    for s in &seeds {
        states[s.node as usize] = LoadState::seed(s.id);
    }
    let rule = cfg.proposal_rule(g);
    for t in 1..=max_rounds {
        let m = sample_matching(g, rule, &mut rngs);
        for (u, v) in m.pairs() {
            let merged = LoadState::average(&states[u as usize], &states[v as usize]);
            states[u as usize] = merged.clone();
            states[v as usize] = merged;
        }
        if t % 5 == 0 {
            let (_, part) = assign_labels(&states, QueryRule::PaperThreshold, beta);
            if accuracy(truth.labels(), part.labels()) >= target {
                return Some(t);
            }
        }
    }
    None
}

fn main() {
    banner(
        "E2: rounds to 95% accuracy vs n",
        "T = Θ(log n / (1 − λ_{k+1})): with an n-independent gap, rounds grow ∝ log n",
    );
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>14}",
        "n", "ln n", "rounds(med)", "runs", "rounds/ln n"
    );
    let k = 4usize;
    for &n in &[256usize, 512, 1024, 2048, 4096, 8192] {
        let size = n / k;
        let (g, truth) = regular_cluster_graph(k, size, 12, 3, 7 + n as u64).expect("generator");
        let mut results: Vec<usize> = Vec::new();
        for rep in 0..5u64 {
            if let Some(r) = rounds_to_accuracy(&g, &truth, 0.25, 1000 + rep, 0.95, 4000) {
                results.push(r);
            }
        }
        results.sort_unstable();
        if results.is_empty() {
            println!(
                "{:>8} {:>8.2} {:>12} {:>12} {:>14}",
                n,
                (n as f64).ln(),
                "-",
                0,
                "-"
            );
            continue;
        }
        let median = results[results.len() / 2];
        println!(
            "{:>8} {:>8.2} {:>12} {:>12} {:>14.2}",
            n,
            (n as f64).ln(),
            median,
            results.len(),
            median as f64 / (n as f64).ln()
        );
    }
    println!();
    println!("expected shape: the final column is roughly constant (logarithmic scaling).");
}
