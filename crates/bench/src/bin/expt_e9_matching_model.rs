//! E9 — Lemma 2.1: the matching model's expectation.
//!
//! `E[M^{(t)}] = (1 − d̄/4) I + (d̄/4) P` with `d̄ = (1 − 1/2d)^{d−1}`.
//! Monte-Carlo estimates on `d`-regular graphs: per-edge inclusion
//! frequency vs `d̄/(2d)`, per-node matched frequency vs `d̄/2`, and
//! matching size vs `n·d̄/4` pairs.

use lbc_bench::banner;
use lbc_core::matching::{d_bar, edge_match_probability, sample_matching, ProposalRule};
use lbc_distsim::NodeRng;
use lbc_graph::generators::{complete, cycle, random_regular};
use lbc_graph::Graph;

fn measure(name: &str, g: &Graph, d: usize, trials: usize) {
    let n = g.n();
    let mut rngs: Vec<NodeRng> = (0..n as u32).map(|v| NodeRng::for_node(0xE9, v)).collect();
    // Probe a specific edge and node.
    let probe_u = 0u32;
    let probe_v = g.neighbours(0)[0];
    let mut edge_hits = 0usize;
    let mut node_hits = 0usize;
    let mut total_pairs = 0usize;
    for _ in 0..trials {
        let m = sample_matching(g, ProposalRule::Uniform, &mut rngs);
        if m.partner(probe_u) == Some(probe_v) {
            edge_hits += 1;
        }
        if m.partner(probe_u).is_some() {
            node_hits += 1;
        }
        total_pairs += m.size();
    }
    let t = trials as f64;
    println!(
        "{:<16} {:>4} {:>10.5} {:>10.5} {:>10.5} {:>10.5} {:>10.1} {:>10.1}",
        name,
        d,
        edge_hits as f64 / t,
        edge_match_probability(d),
        node_hits as f64 / t,
        d_bar(d) / 2.0,
        total_pairs as f64 / t,
        n as f64 * d_bar(d) / 4.0
    );
}

fn main() {
    banner(
        "E9: the matching model (Lemma 2.1)",
        "E[M] = (1 − d̄/4)I + (d̄/4)P: per-edge rate d̄/2d, per-node rate d̄/2, |M| = n·d̄/4",
    );
    println!(
        "{:<16} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "graph", "d", "edge meas", "edge pred", "node meas", "node pred", "|M| meas", "|M| pred"
    );
    let trials = 40_000;
    measure("cycle(200)", &cycle(200).unwrap(), 2, trials);
    measure(
        "random-reg(200,6)",
        &random_regular(200, 6, 9).unwrap(),
        6,
        trials,
    );
    measure("complete(24)", &complete(24).unwrap(), 23, trials);
    println!();
    println!("expected shape: measured ≈ predicted in all three columns (the random-");
    println!("regular instance has a handful of sub-d nodes from matching collisions,");
    println!("so its row can sit a hair off the exact d-regular prediction).");
}
