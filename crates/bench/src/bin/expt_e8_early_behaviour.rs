//! E8 — Lemma 4.1 and Remark 1: the early behaviour of the load
//! balancing process.
//!
//! Starting the 1-dimensional process at a good node, we track
//! `E‖Q y^{(0)} − y^{(t)}‖` (mean over runs). Lemma 4.1 bounds it by
//! `2√(t(1 − λ_k))·‖Q y^{(0)}‖ + o(n^{-c})` — small for `t ≈ T`, and the
//! bound grows with `t` (Remark 1: the process eventually leaves the
//! cluster structure for the global uniform vector). We print the
//! measured mean against the lemma's envelope, plus the Lemma 4.3
//! distance to the cluster indicator.

use lbc_bench::{banner, mean_std};
use lbc_core::analysis::{chi_indicator, ClusterAnalysis};
use lbc_core::matching::{apply_matching_dense, sample_matching, ProposalRule};
use lbc_distsim::NodeRng;
use lbc_graph::generators::ring_of_cliques;
use lbc_linalg::spectral::SpectralOracle;
use lbc_linalg::{dist, norm};

fn main() {
    banner(
        "E8: early behaviour of load balancing (Lemma 4.1, Lemma 4.3, Remark 1)",
        "E‖Qy0 − y(t)‖ ≤ 2√(t(1−λ_k))·‖Qy0‖ + o(1); dips by t ≈ T, grows after",
    );
    let k = 4usize;
    let (g, truth) = ring_of_cliques(k, 64, 0).expect("generator");
    let n = g.n();
    let analysis = ClusterAnalysis::compute(&g, &truth, 3);
    let oracle = SpectralOracle::compute(&g, k + 1, 3);
    let lambda_k = oracle.lambda(k);
    let start = analysis.nodes_by_alpha()[0];
    let cluster = truth.label(start);
    let chi = chi_indicator(&truth, cluster, n);
    let q_y0 = {
        let mut y = vec![0.0; n];
        y[start as usize] = 1.0;
        analysis.project_top_k(&y)
    };
    let q_norm = norm(&q_y0);
    println!(
        "n = {n}, start node {start} (α = {:.2e}), λ_k = {lambda_k:.6}, ‖Qy0‖ = {q_norm:.4}",
        analysis.alphas[start as usize]
    );
    println!();
    println!(
        "{:>6} {:>14} {:>12} {:>14} {:>14}",
        "t", "E‖Qy0−y(t)‖", "std", "lemma bound", "E‖y(t)−χ_S‖"
    );

    let rounds = 400usize;
    let reps = 12u64;
    let checkpoints: Vec<usize> = (0..=rounds).step_by(25).collect();
    let mut proj_err: Vec<Vec<f64>> = vec![Vec::new(); checkpoints.len()];
    let mut chi_err: Vec<Vec<f64>> = vec![Vec::new(); checkpoints.len()];
    for rep in 0..reps {
        let mut rngs: Vec<NodeRng> = (0..n as u32)
            .map(|v| NodeRng::for_node(0xE8_0000 + rep, v))
            .collect();
        let mut y = vec![0.0; n];
        y[start as usize] = 1.0;
        let mut ci = 0usize;
        for t in 0..=rounds {
            if ci < checkpoints.len() && t == checkpoints[ci] {
                proj_err[ci].push(dist(&q_y0, &y));
                chi_err[ci].push(dist(&y, &chi));
                ci += 1;
            }
            if t < rounds {
                let m = sample_matching(&g, ProposalRule::Uniform, &mut rngs);
                apply_matching_dense(&m, &mut y);
            }
        }
    }
    for (ci, &t) in checkpoints.iter().enumerate() {
        let (pm, ps) = mean_std(&proj_err[ci]);
        let (cm, _) = mean_std(&chi_err[ci]);
        let envelope = 2.0 * ((t as f64) * (1.0 - lambda_k)).sqrt() * q_norm;
        println!(
            "{:>6} {:>14.6} {:>12.6} {:>14.6} {:>14.6}",
            t, pm, ps, envelope, cm
        );
    }
    println!();
    println!("expected shape: the measured error collapses from ‖y0 − Qy0‖ ≈ 1 to a small");
    println!("plateau within ~T rounds, stays far below the (loose, increasing) lemma");
    println!("envelope, and creeps back up as the process mixes globally (Remark 1).");
}
