//! E6 — §4.5: almost-regular graphs. As long as `Δ/δ = O(1)`, the
//! algorithm (with the `G*` self-loop emulation) keeps its guarantees.
//!
//! Sweep degree noise on a clustered base graph; compare the §4.5 capped
//! rule (correct) against naively running the plain uniform rule on the
//! irregular graph (ablation — biased towards low-degree nodes).

use lbc_bench::{banner, mean_std};
use lbc_core::{cluster, DegreeMode, LbConfig};
use lbc_eval::accuracy;
use lbc_graph::generators::{perturb_degrees, regular_cluster_graph};

fn main() {
    banner(
        "E6: almost-regular graphs",
        "§4.5 — with Δ/δ = O(1), G*-emulation (capped rule) preserves recovery",
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>14} {:>14}",
        "add_p", "max_deg", "min_deg", "ratio", "capped(acc)", "uniform(acc)"
    );
    // Near-regular base (unions of perfect matchings): ratio starts at
    // ≈ 1 so the sweep isolates the effect of growing Δ/δ.
    let (base, truth) = regular_cluster_graph(3, 160, 12, 3, 55).expect("generator");
    let rounds = 260usize;
    for &add_p in &[0.0, 0.03, 0.06, 0.12, 0.24] {
        let g = if add_p == 0.0 {
            base.clone()
        } else {
            perturb_degrees(&base, &truth, add_p, 0.0, 91).expect("perturb")
        };
        let acc_for = |mode: DegreeMode| {
            let mut accs = Vec::new();
            for rep in 0..3u64 {
                let cfg = LbConfig::new(1.0 / 3.0, rounds)
                    .with_seed(300 + rep)
                    .with_degree_mode(mode);
                if let Ok(out) = cluster(&g, &cfg) {
                    accs.push(accuracy(truth.labels(), out.partition.labels()));
                }
            }
            mean_std(&accs).0
        };
        let capped = acc_for(DegreeMode::Capped(g.max_degree()));
        let uniform = acc_for(DegreeMode::Regular);
        println!(
            "{:>8.2} {:>8} {:>8} {:>8.3} {:>14.4} {:>14.4}",
            add_p,
            g.max_degree(),
            g.min_degree(),
            g.degree_ratio(),
            capped,
            uniform
        );
    }
    println!();
    println!("expected shape: both rules track while Δ/δ ≈ 1; as irregularity grows the");
    println!("capped (G*) rule is the principled §4.5 choice — the plain rule is shown as");
    println!("an ablation and may stay competitive at moderate ratios.");
}
