//! E10 — §1.2: the centralised variant runs in `O(n log n)` given a
//! random-neighbour oracle — *sub-linear in the number of edges* for
//! dense graphs.
//!
//! Fix `n`, densify the clusters (`d_in` doubling). The load-balancing
//! algorithm's wall-clock should stay nearly flat (its per-round work is
//! `O(n + |M|·s)`, degree-independent thanks to O(1) neighbour
//! sampling), while spectral clustering grows with `m` (its matvec is
//! `Θ(m)` per Lanczos step).

use lbc_baselines::spectral_clustering;
use lbc_bench::banner;
use lbc_core::{cluster, LbConfig};
use lbc_eval::accuracy;
use lbc_graph::generators::regular_cluster_graph;
use std::time::Instant;

fn main() {
    banner(
        "E10: sub-linear centralised variant",
        "§1.2 — runtime O(n log n) independent of m; spectral pays Θ(m) per matvec",
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "d_in", "m", "m/n", "ours(ms)", "spectral(ms)", "acc ours", "acc spec"
    );
    let n = 4096usize;
    let k = 4usize;
    let rounds = 240usize;
    for &d_in in &[8usize, 16, 32, 64, 128, 256, 512] {
        let (g, truth) =
            regular_cluster_graph(k, n / k, d_in, 4, 17 + d_in as u64).expect("generator");
        let cfg = LbConfig::new(0.25, rounds).with_seed(3);
        let t0 = Instant::now();
        let out = cluster(&g, &cfg).expect("clustering");
        let ours_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let sp = spectral_clustering(&g, k, 5);
        let spec_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>6} {:>10} {:>10.1} {:>12.1} {:>12.1} {:>10.4} {:>10.4}",
            d_in,
            g.m(),
            g.m() as f64 / n as f64,
            ours_ms,
            spec_ms,
            accuracy(truth.labels(), out.partition.labels()),
            accuracy(truth.labels(), sp.labels())
        );
    }
    println!();
    println!("expected shape: the 'ours' column is flat as m grows 64x — the centralised");
    println!("variant's cost is O(n·(s + log n)) with O(1) neighbour sampling, independent");
    println!("of the edge count (the §1.2 sub-linear claim). Spectral is flat at first");
    println!("(its Lanczos reorthogonalisation is m-independent and dominates at small m)");
    println!("but its Θ(m)-per-matvec term takes over as the graph densifies.");
}
