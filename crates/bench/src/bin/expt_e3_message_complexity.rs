//! E3 — Theorem 1.1(2): message complexity `O(T · n · k log k)` words.
//!
//! Measures the exact number of words shipped by the distributed
//! deployment (3-message handshake, states of ≤ s entries) while scaling
//! `n` at fixed `k` and scaling `k` at fixed `n`. The normalised column
//! `words / (T·n·s̄)` should stay bounded by a small constant.

use lbc_bench::banner;
use lbc_core::{cluster_distributed, LbConfig};
use lbc_eval::accuracy;
use lbc_graph::generators::regular_cluster_graph;

fn run(n: usize, k: usize, rounds: usize, seed: u64) {
    let size = n / k;
    let (g, truth) = regular_cluster_graph(k, size, 12, 3, seed).expect("generator");
    let beta = 1.0 / k as f64;
    let cfg = LbConfig::new(beta, rounds).with_seed(seed ^ 0xE3);
    match cluster_distributed(&g, &cfg, None) {
        Ok((out, stats)) => {
            let s_bar = cfg.trials() as u64;
            let norm = stats.sent_words as f64 / (rounds as f64 * n as f64 * s_bar as f64);
            println!(
                "{:>8} {:>4} {:>6} {:>6} {:>14} {:>14} {:>12.4} {:>10.4}",
                n,
                k,
                rounds,
                out.seeds.len(),
                stats.sent_messages,
                stats.sent_words,
                norm,
                accuracy(truth.labels(), out.partition.labels())
            );
        }
        Err(e) => println!("{n:>8} {k:>4} failed: {e}"),
    }
}

fn main() {
    banner(
        "E3: message complexity",
        "Thm 1.1(2) — total words = O(T · n · k log k); words/(T·n·s̄) stays O(1)",
    );
    println!(
        "{:>8} {:>4} {:>6} {:>6} {:>14} {:>14} {:>12} {:>10}",
        "n", "k", "T", "s", "messages", "words", "w/(T·n·s̄)", "accuracy"
    );
    println!("-- scaling n at k = 4 --");
    for &n in &[512usize, 1024, 2048, 4096] {
        run(n, 4, 200, 11 + n as u64);
    }
    println!("-- scaling k at n = 2048 --");
    for &k in &[2usize, 4, 8, 16] {
        run(2048, k, 200, 31 + k as u64);
    }
    println!();
    println!("expected shape: the normalised column is flat in n and in k — the measured");
    println!("traffic tracks the Theorem 1.1(2) bound with a constant ≤ ~1.");
}
