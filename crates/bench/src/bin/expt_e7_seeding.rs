//! E7 — the seeding lemma (proof of Theorem 1.1): with
//! `s̄ = (3/β) ln(1/β)` trials of per-node activation probability `1/n`,
//! (i) `E[s] ≈ s̄` and (ii) every cluster of size ≥ βn receives at least
//! one seed except with probability ≤ `k·β³` (union bound over
//! `e^{−s̄β} ≤ β³` per cluster).

use lbc_bench::{banner, mean_std};
use lbc_core::seeding::{expected_trials, run_seeding};
use lbc_distsim::NodeRng;

fn main() {
    banner(
        "E7: seeding procedure",
        "proof of Thm 1.1 — E[s] = s̄; every cluster seeded w.p. ≥ 1 − k·β³",
    );
    println!(
        "{:>8} {:>4} {:>6} {:>10} {:>10} {:>12} {:>12}",
        "beta", "k", "s̄", "E[s] meas", "std", "cover meas", "cover bound"
    );
    let n = 2000usize;
    let reps = 600u64;
    for &(beta, k) in &[(0.5f64, 2usize), (0.25, 4), (0.125, 8), (0.1, 10)] {
        let trials = expected_trials(beta);
        let cluster_size = (beta * n as f64) as usize;
        let mut counts = Vec::new();
        let mut covered = 0usize;
        for rep in 0..reps {
            let mut rngs: Vec<NodeRng> = (0..n as u32)
                .map(|v| NodeRng::for_node(0xE7_0000 + rep, v))
                .collect();
            let seeds = run_seeding(n, trials, &mut rngs);
            counts.push(seeds.len() as f64);
            // Clusters = consecutive blocks of βn nodes (k·βn ≤ n).
            let all = (0..k).all(|c| {
                seeds.iter().any(|s| {
                    let v = s.node as usize;
                    v >= c * cluster_size && v < (c + 1) * cluster_size
                })
            });
            if all {
                covered += 1;
            }
        }
        let (mean, std) = mean_std(&counts);
        let bound = 1.0 - k as f64 * beta.powi(3);
        println!(
            "{:>8.3} {:>4} {:>6} {:>10.2} {:>10.2} {:>12.3} {:>12.3}",
            beta,
            k,
            trials,
            mean,
            std,
            covered as f64 / reps as f64,
            bound
        );
    }
    println!();
    println!("expected shape: E[s] within a seed-overlap hair of s̄; measured coverage at");
    println!("or above the analytic bound (the bound is loose for small β).");
}
