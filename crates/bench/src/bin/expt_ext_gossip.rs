//! Extension — other gossip processes on the matching substrate
//! (paper abstract: the early-behaviour analysis "can be further applied
//! to analyse other gossip processes, such as rumour spreading and
//! averaging processes").
//!
//! Two tables:
//! 1. Rumour spreading on a ring of cliques: rounds to inform one
//!    cluster vs the whole graph, sweeping the cut width. The two-phase
//!    separation mirrors the `T`-vs-mixing-time gap the clustering
//!    algorithm exploits.
//! 2. Gossip averaging: rounds to deviation ≤ 0.05 on graphs of
//!    increasing spectral gap.

use lbc_bench::banner;
use lbc_core::gossip::{gossip_average, rumour_spread};
use lbc_core::matching::ProposalRule;
use lbc_graph::generators::{complete, cycle, regular_cluster_graph};
use lbc_linalg::spectral::SpectralOracle;

fn main() {
    banner(
        "EXT: gossip processes on the matching model",
        "abstract — the early-behaviour separation shows up in rumour spreading and averaging",
    );
    println!("-- rumour spreading: ring of 4 near-regular clusters (n = 512) --");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "bridges", "half (128)", "full (512)", "full/half"
    );
    for &bridges in &[16usize, 4, 1] {
        let (g, _) = regular_cluster_graph(4, 128, 12, bridges, 3).expect("generator");
        let mut halves = Vec::new();
        let mut fulls = Vec::new();
        for rep in 0..5u64 {
            let t = rumour_spread(&g, ProposalRule::Uniform, 0, 400_000, 100 + rep);
            if let (Some(h), Some(f)) = (t.rounds_to(128), t.completed_at) {
                halves.push(h as f64);
                fulls.push(f as f64);
            }
        }
        let h = halves.iter().sum::<f64>() / halves.len().max(1) as f64;
        let f = fulls.iter().sum::<f64>() / fulls.len().max(1) as f64;
        println!("{:>8} {:>14.0} {:>14.0} {:>10.1}", bridges, h, f, f / h);
    }
    println!();
    println!("-- gossip averaging: rounds to max deviation ≤ 5% --");
    println!("{:>18} {:>12} {:>12}", "graph", "gap 1-λ2", "rounds");
    let k64 = complete(64).unwrap();
    let (rc, _) = regular_cluster_graph(2, 32, 8, 2, 5).unwrap();
    let c64 = cycle(64).unwrap();
    for (name, g) in [
        ("complete(64)", k64),
        ("2 clusters (64)", rc),
        ("cycle(64)", c64),
    ] {
        let oracle = SpectralOracle::compute(&g, 2, 1);
        let half = g.n() / 2;
        let initial: Vec<f64> = (0..g.n())
            .map(|i| if i < half { 1.0 } else { 0.0 })
            .collect();
        let t = gossip_average(&g, ProposalRule::Uniform, &initial, 60_000, 9);
        let rounds = t
            .rounds_to_eps(0.05 * t.deviation[0])
            .map(|r| r.to_string())
            .unwrap_or_else(|| ">60000".into());
        println!(
            "{:>18} {:>12.6} {:>12}",
            name,
            1.0 - oracle.lambda(2),
            rounds
        );
    }
    println!();
    println!("expected shape: rumour saturates the source cluster well before it finishes");
    println!("crossing the cut, and the full/half ratio grows as the bridges thin;");
    println!("averaging rounds scale inversely with the spectral gap.");
}
