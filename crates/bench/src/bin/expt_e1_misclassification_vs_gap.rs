//! E1 — Theorem 1.1(1): on well-clustered graphs the number of
//! misclassified nodes is `o(n)`, and recovery degrades as the gap
//! parameter `Υ = (1 − λ_{k+1})/ρ(k)` shrinks.
//!
//! Workload: planted partition, `k = 4`, `n = 1000`, `p_in = 0.05`,
//! sweeping `p_out` (denser cuts ⇒ smaller `Υ`). Three algorithm seeds
//! per point.

use lbc_bench::{accuracy_over_seeds, banner, mean_std};
use lbc_core::LbConfig;
use lbc_graph::generators::planted_partition;
use lbc_linalg::spectral::SpectralOracle;

fn main() {
    banner(
        "E1: misclassification vs cluster gap",
        "Thm 1.1(1) — misclassified = o(n) when Υ is large; degrades as Υ → small",
    );
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>6} {:>12} {:>10}",
        "p_out", "Upsilon", "gap", "rho(k)", "T", "acc(mean)", "acc(std)"
    );
    let k = 4usize;
    let block = 250usize;
    for &p_out in &[0.0005, 0.001, 0.002, 0.005, 0.010, 0.020, 0.040] {
        let (g, truth) = planted_partition(k, block, 0.05, p_out, 97).expect("generator");
        let oracle = SpectralOracle::compute(&g, k + 1, 7);
        let gap = oracle.gap(k);
        let rho = truth.max_conductance(&g);
        let upsilon = oracle.upsilon(&g, &truth);
        let cfg = LbConfig::from_graph(&g, truth.beta());
        let accs = accuracy_over_seeds(&g, &truth, &cfg, 3, 1000);
        let (mean, std) = mean_std(&accs);
        println!(
            "{:>8.4} {:>10.2} {:>10.4} {:>10.5} {:>6} {:>12.4} {:>10.4}",
            p_out,
            upsilon,
            gap,
            rho,
            cfg.rounds.count(),
            mean,
            std
        );
    }
    println!();
    println!("expected shape: accuracy ≈ 1 while Υ ≫ 1, dropping once Υ approaches O(1).");
}
