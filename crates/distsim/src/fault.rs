//! Fault injection: i.i.d. message drops and crashed nodes.
//!
//! The paper assumes a reliable synchronous network; the fault plan lets
//! experiments probe how gracefully the load-balancing process degrades
//! when that assumption is violated (messages lost ⇒ the matched pair's
//! averaging becomes one-sided and load conservation breaks).

use crate::rng::NodeRng;

/// Fault configuration for a [`crate::SyncNetwork`] execution.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Each message is independently dropped with this probability.
    drop_probability: f64,
    /// Round from which node `v` is crashed (`u64::MAX` = never).
    crash_round: Vec<u64>,
    rng: NodeRng,
}

impl FaultPlan {
    /// No faults at all (allocates no crash table).
    pub fn none() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            crash_round: Vec::new(),
            rng: NodeRng::from_seed(0),
        }
    }

    /// Drop each message with probability `p`, deterministic in `seed`.
    ///
    /// # Panics
    /// If `p ∉ \[0, 1\]`.
    pub fn with_drops(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} out of range"
        );
        FaultPlan {
            drop_probability: p,
            crash_round: Vec::new(),
            rng: NodeRng::from_seed(seed ^ 0xFA11_FA11_FA11_FA11),
        }
    }

    /// Mark `nodes` (indices into a graph of `n` nodes) as crashed from
    /// round 0: they never step, never send, never receive.
    pub fn crash_nodes(self, n: usize, nodes: &[u32]) -> Self {
        self.crash_nodes_at(n, nodes, 0)
    }

    /// Mark `nodes` as crashed from `round` onwards (they participate
    /// normally before that — the mid-execution failure scenario).
    pub fn crash_nodes_at(mut self, n: usize, nodes: &[u32], round: u64) -> Self {
        if self.crash_round.len() < n {
            self.crash_round.resize(n, u64::MAX);
        }
        for &v in nodes {
            let slot = &mut self.crash_round[v as usize];
            *slot = (*slot).min(round);
        }
        self
    }

    /// Whether node `v` is crashed at `round`.
    #[inline]
    pub fn is_crashed_at(&self, v: u32, round: u64) -> bool {
        self.crash_round
            .get(v as usize)
            .is_some_and(|&r| round >= r)
    }

    /// Whether node `v` is crashed from the start.
    #[inline]
    pub fn is_crashed(&self, v: u32) -> bool {
        self.is_crashed_at(v, 0)
    }

    /// Decide (consuming randomness) whether the next message is dropped.
    #[inline]
    pub fn drops_message(&mut self) -> bool {
        self.drop_probability > 0.0 && self.rng.bernoulli(self.drop_probability)
    }

    /// Configured drop probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops_or_crashes() {
        let mut f = FaultPlan::none();
        for _ in 0..100 {
            assert!(!f.drops_message());
        }
        assert!(!f.is_crashed(0));
        assert!(!f.is_crashed(1000));
    }

    #[test]
    fn drop_rate_approximates_p() {
        let mut f = FaultPlan::with_drops(0.3, 7);
        let drops = (0..100_000).filter(|_| f.drops_message()).count();
        assert!((drops as f64 - 30_000.0).abs() < 1_500.0, "drops = {drops}");
    }

    #[test]
    fn crash_marks_only_selected() {
        let f = FaultPlan::none().crash_nodes(5, &[1, 3]);
        assert!(f.is_crashed(1));
        assert!(f.is_crashed(3));
        assert!(!f.is_crashed(0));
        assert!(!f.is_crashed(4));
    }

    #[test]
    fn delayed_crash_respects_schedule() {
        let f = FaultPlan::none().crash_nodes_at(4, &[2], 10);
        assert!(!f.is_crashed(2));
        assert!(!f.is_crashed_at(2, 9));
        assert!(f.is_crashed_at(2, 10));
        assert!(f.is_crashed_at(2, 99));
        assert!(!f.is_crashed_at(1, 99));
    }

    #[test]
    fn earliest_crash_round_wins() {
        let f = FaultPlan::none()
            .crash_nodes_at(4, &[2], 10)
            .crash_nodes_at(4, &[2], 5);
        assert!(f.is_crashed_at(2, 5));
        assert!(!f.is_crashed_at(2, 4));
    }

    #[test]
    #[should_panic]
    fn invalid_probability_panics() {
        let _ = FaultPlan::with_drops(1.5, 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = FaultPlan::with_drops(0.5, 3);
        let mut b = FaultPlan::with_drops(0.5, 3);
        for _ in 0..50 {
            assert_eq!(a.drops_message(), b.drops_message());
        }
    }
}
