//! Synchronous message-passing network simulator.
//!
//! The paper's execution model (§2.2, §3.1) is the classic synchronous
//! `CONGEST`-style network: `n` processors at the nodes of a graph `G`;
//! computation proceeds in global rounds; in each round a node may send a
//! message to each neighbour and receives all messages addressed to it at
//! the start of the next round. This crate implements exactly that model
//! and additionally *measures* what the paper only bounds analytically:
//! the number of messages and machine words exchanged (Theorem 1.1(2)).
//!
//! * [`rng::NodeRng`] — per-node deterministic RNG streams (SplitMix64),
//!   so distributed executions are replayable and can be compared
//!   bit-for-bit against the centralised implementation in `lbc-core`.
//! * [`Payload`] — message types report their size in machine words.
//! * [`SyncNetwork`] — the round engine: inbox/outbox plumbing, neighbour
//!   enforcement, accounting, and fault injection ([`FaultPlan`]: i.i.d.
//!   message drops and crashed nodes).

pub mod accounting;
pub mod fault;
pub mod network;
pub mod rng;
pub mod trace;

pub use accounting::MessageStats;
pub use fault::FaultPlan;
pub use network::{Ctx, Node, Payload, SyncNetwork};
pub use rng::NodeRng;
pub use trace::{RoundSample, RoundTrace};
