//! Message and word accounting.
//!
//! Theorem 1.1(2) bounds the total information exchanged in *words*;
//! the simulator counts both messages and their word sizes so experiments
//! can compare the measured totals against `O(T · n · k log k)`.

/// Cumulative traffic statistics for a network execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Messages handed to the network by senders.
    pub sent_messages: u64,
    /// Messages actually delivered (sent − dropped − to/from crashed).
    pub delivered_messages: u64,
    /// Messages lost to fault injection.
    pub dropped_messages: u64,
    /// Machine words across *sent* messages (the paper's cost model
    /// charges the sender).
    pub sent_words: u64,
    /// Machine words across delivered messages.
    pub delivered_words: u64,
    /// Rounds executed.
    pub rounds: u64,
}

impl MessageStats {
    /// Record a send of `words` words, delivered or not.
    pub fn record_sent(&mut self, words: u64) {
        self.sent_messages += 1;
        self.sent_words += words;
    }

    /// Record a successful delivery of `words` words.
    pub fn record_delivered(&mut self, words: u64) {
        self.delivered_messages += 1;
        self.delivered_words += words;
    }

    /// Record a dropped message.
    pub fn record_dropped(&mut self) {
        self.dropped_messages += 1;
    }

    /// Average delivered words per round (0 if no rounds ran).
    pub fn words_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.delivered_words as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = MessageStats::default();
        s.record_sent(3);
        s.record_sent(5);
        s.record_delivered(3);
        s.record_dropped();
        assert_eq!(s.sent_messages, 2);
        assert_eq!(s.sent_words, 8);
        assert_eq!(s.delivered_messages, 1);
        assert_eq!(s.delivered_words, 3);
        assert_eq!(s.dropped_messages, 1);
    }

    #[test]
    fn words_per_round() {
        let mut s = MessageStats::default();
        assert_eq!(s.words_per_round(), 0.0);
        s.record_delivered(10);
        s.rounds = 4;
        assert_eq!(s.words_per_round(), 2.5);
    }
}
