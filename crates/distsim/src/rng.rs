//! Deterministic per-node random streams.
//!
//! Every node owns an independent SplitMix64 stream derived from
//! `(global_seed, node_id)`. SplitMix64 is tiny, fast, passes BigCrush on
//! its 64-bit outputs, and — crucially for this workspace — lets the
//! centralised implementation in `lbc-core` replay the *exact* random
//! choices of the distributed execution, which is how the
//! distributed ≡ centralised property tests work.

/// SplitMix64 stream (Steele, Lea & Flood 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRng {
    state: u64,
}

/// The SplitMix64 output finaliser (murmur-style avalanche).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl NodeRng {
    /// Stream for `node` under `global_seed`.
    ///
    /// The pair is pushed through the SplitMix64 finaliser twice so the
    /// initial state is avalanche-random: without this, *consecutive*
    /// global seeds put node streams at nearby offsets of the same
    /// SplitMix64 orbit, which measurably correlates rare events across
    /// runs (observed as a 13-point drop in seeding-coverage Monte
    /// Carlos before the fix).
    pub fn for_node(global_seed: u64, node: u32) -> Self {
        let a = mix64(global_seed ^ 0x9E37_79B9_7F4A_7C15);
        let b = mix64((node as u64).wrapping_add(0xD1B5_4A32_D192_ED03));
        NodeRng {
            state: mix64(a.wrapping_add(b.rotate_left(32))),
        }
    }

    /// Raw stream from a seed (for non-node uses such as fault injection).
    pub fn from_seed(seed: u64) -> Self {
        NodeRng { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, bound)` via Lemire rejection.
    ///
    /// # Panics
    /// If `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound {
                return (m >> 64) as usize;
            }
            // Rejection zone: accept unless lo < 2^64 mod bound.
            let t = bound.wrapping_neg() % bound;
            if lo >= t {
                return (m >> 64) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_node() {
        let mut a = NodeRng::for_node(42, 7);
        let mut b = NodeRng::for_node(42, 7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_nodes_different_streams() {
        let mut a = NodeRng::for_node(42, 0);
        let mut b = NodeRng::for_node(42, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = NodeRng::for_node(1, 0);
        let mut b = NodeRng::for_node(2, 0);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = NodeRng::from_seed(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_uniform_enough() {
        let mut r = NodeRng::from_seed(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.below(5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts = {counts:?}");
        }
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut r = NodeRng::from_seed(5);
        for _ in 0..100 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        let mut r = NodeRng::from_seed(5);
        let _ = r.below(0);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = NodeRng::from_seed(11);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.25)).count();
        assert!((hits as f64 - 25_000.0).abs() < 1_000.0, "hits = {hits}");
    }
}
