//! Per-round execution traces.
//!
//! Experiments that study *dynamics* (how traffic or matching activity
//! evolves over the execution) need more than the cumulative
//! [`crate::MessageStats`]: they need one sample per round. A
//! [`RoundTrace`] records those samples when tracing is enabled on the
//! network.

/// One round's traffic sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundSample {
    /// Round index (0-based).
    pub round: u64,
    /// Messages handed to the network this round.
    pub sent_messages: u64,
    /// Messages delivered (will be consumed next round).
    pub delivered_messages: u64,
    /// Messages dropped by fault injection this round.
    pub dropped_messages: u64,
    /// Words across sent messages this round.
    pub sent_words: u64,
}

/// Recorded per-round history of a network execution.
#[derive(Debug, Clone, Default)]
pub struct RoundTrace {
    samples: Vec<RoundSample>,
}

impl RoundTrace {
    /// Empty trace.
    pub fn new() -> Self {
        RoundTrace::default()
    }

    /// Append one round's sample.
    pub fn push(&mut self, sample: RoundSample) {
        self.samples.push(sample);
    }

    /// All samples, in round order.
    pub fn samples(&self) -> &[RoundSample] {
        &self.samples
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The busiest round by sent words (None when empty).
    pub fn peak_words_round(&self) -> Option<RoundSample> {
        self.samples.iter().copied().max_by_key(|s| s.sent_words)
    }

    /// Total sent words across the trace (cross-check against the
    /// cumulative stats).
    pub fn total_sent_words(&self) -> u64 {
        self.samples.iter().map(|s| s.sent_words).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u64, words: u64) -> RoundSample {
        RoundSample {
            round,
            sent_messages: 1,
            delivered_messages: 1,
            dropped_messages: 0,
            sent_words: words,
        }
    }

    #[test]
    fn accumulates_in_order() {
        let mut t = RoundTrace::new();
        assert!(t.is_empty());
        t.push(sample(0, 5));
        t.push(sample(1, 9));
        t.push(sample(2, 2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_sent_words(), 16);
        assert_eq!(t.peak_words_round().unwrap().round, 1);
    }

    #[test]
    fn empty_trace_has_no_peak() {
        assert!(RoundTrace::new().peak_words_round().is_none());
    }
}
