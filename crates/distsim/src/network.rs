//! The synchronous round engine.
//!
//! A [`SyncNetwork`] runs one [`Node`] implementation per graph node.
//! Each round, every (live) node is stepped with the messages delivered
//! to it in the previous round and may send messages to neighbours only —
//! sending to a non-neighbour is a protocol bug and panics loudly.

use lbc_graph::{Graph, NodeId};

use crate::accounting::MessageStats;
use crate::fault::FaultPlan;
use crate::rng::NodeRng;
use crate::trace::{RoundSample, RoundTrace};

/// Message payloads report their size in machine words so the network
/// can account Theorem 1.1(2)'s cost model.
pub trait Payload: Clone {
    /// Size of this message in machine words.
    fn words(&self) -> usize;
}

impl Payload for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn words(&self) -> usize {
        1 + self.iter().map(Payload::words).sum::<usize>()
    }
}

/// Per-round execution context handed to a node.
pub struct Ctx<'a, M: Payload> {
    /// This node's id.
    pub id: NodeId,
    /// Current round (0-based).
    pub round: u64,
    /// This node's private random stream.
    pub rng: &'a mut NodeRng,
    neighbours: &'a [NodeId],
    inbox: &'a [(NodeId, M)],
    outbox: &'a mut Vec<(NodeId, M)>,
}

impl<M: Payload> Ctx<'_, M> {
    /// Messages delivered to this node this round, as `(sender, payload)`.
    pub fn inbox(&self) -> &[(NodeId, M)] {
        self.inbox
    }

    /// This node's neighbour list.
    pub fn neighbours(&self) -> &[NodeId] {
        self.neighbours
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbours.len()
    }

    /// Simultaneous access to the neighbour list and the mutable RNG
    /// (split borrow for protocols that draw against the list).
    pub fn neighbours_and_rng(&mut self) -> (&[NodeId], &mut NodeRng) {
        (self.neighbours, self.rng)
    }

    /// Uniformly random neighbour (None for isolated nodes).
    pub fn random_neighbour(&mut self) -> Option<NodeId> {
        if self.neighbours.is_empty() {
            None
        } else {
            Some(self.neighbours[self.rng.below(self.neighbours.len())])
        }
    }

    /// Queue a message to neighbour `to` for delivery next round.
    ///
    /// # Panics
    /// If `to` is not a neighbour of this node (protocol bug).
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbours.binary_search(&to).is_ok(),
            "node {} attempted to message non-neighbour {}",
            self.id,
            to
        );
        self.outbox.push((to, msg));
    }
}

/// A node program: stepped once per round with its delivered messages.
pub trait Node {
    /// Message type exchanged by this protocol.
    type Msg: Payload;

    /// Execute one synchronous round.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>);
}

/// Synchronous network executing one `N` per node of `graph`.
pub struct SyncNetwork<'g, N: Node> {
    graph: &'g Graph,
    nodes: Vec<N>,
    rngs: Vec<NodeRng>,
    inboxes: Vec<Vec<(NodeId, N::Msg)>>,
    pending: Vec<Vec<(NodeId, N::Msg)>>,
    round: u64,
    stats: MessageStats,
    faults: FaultPlan,
    trace: Option<RoundTrace>,
}

impl<'g, N: Node> SyncNetwork<'g, N> {
    /// Build a network: `factory(v)` constructs the program for node `v`;
    /// per-node RNG streams derive from `seed`.
    pub fn new(graph: &'g Graph, seed: u64, mut factory: impl FnMut(NodeId) -> N) -> Self {
        let n = graph.n();
        SyncNetwork {
            graph,
            nodes: (0..n as NodeId).map(&mut factory).collect(),
            rngs: (0..n as NodeId)
                .map(|v| NodeRng::for_node(seed, v))
                .collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            pending: (0..n).map(|_| Vec::new()).collect(),
            round: 0,
            stats: MessageStats::default(),
            faults: FaultPlan::none(),
            trace: None,
        }
    }

    /// Install a fault plan (replaces any previous one).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Record a per-round [`RoundTrace`] from now on.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(RoundTrace::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&RoundTrace> {
        self.trace.as_ref()
    }

    /// Execute one synchronous round: deliver previous round's messages,
    /// step every live node, collect its sends.
    pub fn step(&mut self) {
        let n = self.graph.n();
        // Deliver pending → inboxes.
        for v in 0..n {
            self.inboxes[v].clear();
            std::mem::swap(&mut self.inboxes[v], &mut self.pending[v]);
        }
        let mut outbox: Vec<(NodeId, N::Msg)> = Vec::new();
        let before = self.stats;
        for v in 0..n {
            if self.faults.is_crashed_at(v as NodeId, self.round) {
                continue;
            }
            outbox.clear();
            let mut ctx = Ctx {
                id: v as NodeId,
                round: self.round,
                rng: &mut self.rngs[v],
                neighbours: self.graph.neighbours(v as NodeId),
                inbox: &self.inboxes[v],
                outbox: &mut outbox,
            };
            self.nodes[v].on_round(&mut ctx);
            for (to, msg) in outbox.drain(..) {
                let words = msg.words() as u64;
                self.stats.record_sent(words);
                if self.faults.is_crashed_at(to, self.round) || self.faults.drops_message() {
                    self.stats.record_dropped();
                    continue;
                }
                self.stats.record_delivered(words);
                self.pending[to as usize].push((v as NodeId, msg));
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.push(RoundSample {
                round: self.round,
                sent_messages: self.stats.sent_messages - before.sent_messages,
                delivered_messages: self.stats.delivered_messages - before.delivered_messages,
                dropped_messages: self.stats.dropped_messages - before.dropped_messages,
                sent_words: self.stats.sent_words - before.sent_words,
            });
        }
        self.round += 1;
        self.stats.rounds = self.round;
    }

    /// Run `rounds` additional rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Immutable access to node `v`'s program.
    pub fn node(&self, v: NodeId) -> &N {
        &self.nodes[v as usize]
    }

    /// Immutable access to all node programs.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    /// Flooding protocol: node 0 starts "wet"; wet nodes tell neighbours
    /// once. Tests delivery timing, neighbour enforcement, accounting.
    struct Flood {
        wet: bool,
        announced: bool,
    }

    impl Node for Flood {
        type Msg = u64;

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) {
            if !self.wet && !ctx.inbox().is_empty() {
                self.wet = true;
            }
            if self.wet && !self.announced {
                self.announced = true;
                let neighbours: Vec<_> = ctx.neighbours().to_vec();
                for w in neighbours {
                    ctx.send(w, ctx.round);
                }
            }
        }
    }

    fn flood_network(g: &Graph) -> SyncNetwork<'_, Flood> {
        SyncNetwork::new(g, 1, |v| Flood {
            wet: v == 0,
            announced: false,
        })
    }

    use lbc_graph::Graph;

    #[test]
    fn flood_reaches_everyone_in_diameter_rounds() {
        let g = generators::cycle(8).unwrap();
        let mut net = flood_network(&g);
        net.run(5); // diameter 4 + 1 slack
        assert!(net.nodes().iter().all(|f| f.wet));
    }

    #[test]
    fn messages_delivered_next_round_not_same_round() {
        let g = generators::cycle(4).unwrap();
        let mut net = flood_network(&g);
        net.step();
        // After one round only node 0 has sent; nobody is wet yet.
        assert!(!net.node(1).wet && !net.node(3).wet);
        net.step();
        assert!(net.node(1).wet && net.node(3).wet);
        assert!(!net.node(2).wet);
    }

    #[test]
    fn accounting_counts_messages_and_words() {
        let g = generators::cycle(4).unwrap();
        let mut net = flood_network(&g);
        net.run(4);
        let s = net.stats();
        // Every node announces exactly once to 2 neighbours.
        assert_eq!(s.sent_messages, 8);
        assert_eq!(s.delivered_messages, 8);
        assert_eq!(s.sent_words, 8); // u64 payload = 1 word each
        assert_eq!(s.dropped_messages, 0);
        assert_eq!(s.rounds, 4);
    }

    #[test]
    fn crashed_node_blocks_flood() {
        // Path 0-1-2: crash node 1, flood can't cross.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut net = flood_network(&g);
        net.set_faults(FaultPlan::none().crash_nodes(3, &[1]));
        net.run(5);
        assert!(!net.node(2).wet);
        assert!(net.stats().dropped_messages > 0);
    }

    #[test]
    fn full_drop_probability_blocks_everything() {
        let g = generators::cycle(6).unwrap();
        let mut net = flood_network(&g);
        net.set_faults(FaultPlan::with_drops(1.0, 3));
        net.run(10);
        let wet = net.nodes().iter().filter(|f| f.wet).count();
        assert_eq!(wet, 1); // only the source
        assert_eq!(net.stats().delivered_messages, 0);
    }

    #[test]
    fn deterministic_replay() {
        struct Gossip {
            sum: u64,
        }
        impl Node for Gossip {
            type Msg = u64;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) {
                self.sum += ctx.inbox().iter().map(|(_, m)| *m).sum::<u64>();
                if let Some(w) = ctx.random_neighbour() {
                    let token = ctx.rng.next_u64() % 100;
                    ctx.send(w, token);
                }
            }
        }
        let g = generators::complete(6).unwrap();
        let run = |seed| {
            let mut net = SyncNetwork::new(&g, seed, |_| Gossip { sum: 0 });
            net.run(20);
            net.nodes().iter().map(|x| x.sum).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "non-neighbour")]
    fn sending_to_non_neighbour_panics() {
        struct Bad;
        impl Node for Bad {
            type Msg = u64;
            fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) {
                if ctx.id == 0 {
                    ctx.send(2, 0); // 0 and 2 are not adjacent in a path
                }
            }
        }
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut net = SyncNetwork::new(&g, 1, |_| Bad);
        net.step();
    }

    #[test]
    fn trace_records_per_round_traffic() {
        let g = generators::cycle(4).unwrap();
        let mut net = flood_network(&g);
        net.enable_trace();
        net.run(4);
        let trace = net.trace().unwrap();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.total_sent_words(), net.stats().sent_words);
        // Round 0: only the source announces (2 messages).
        assert_eq!(trace.samples()[0].sent_messages, 2);
    }

    #[test]
    fn delayed_crash_lets_early_rounds_through() {
        // Path 0-1-2: node 1 crashes at round 2 — after relaying.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut net = flood_network(&g);
        net.set_faults(FaultPlan::none().crash_nodes_at(3, &[1], 2));
        net.run(5);
        // Node 1 got wet in round 1 and announced in round 1 (< 2), so
        // node 2 is reached despite the later crash.
        assert!(net.node(2).wet);
    }

    #[test]
    fn vec_payload_word_count() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(v.words(), 4); // length word + 3 entries
    }
}
