//! The binary snapshot format.
//!
//! One snapshot file persists one dataset: its graph's raw CSR arrays
//! plus every cached [`ClusterOutput`] (config, partition, raw labels,
//! seeds, and the resident load states **bit-for-bit** — `f64`s are
//! stored by bit pattern, so a loaded output is exactly the output that
//! was saved, to the last ULP). Layout (all little-endian):
//!
//! ```text
//! offset 0   magic          b"LBCSNAP1"                (8 bytes)
//!        8   version        u32 = 1
//!       12   total_len      u64  (whole file, incl. trailer)
//!       20   applied_seq    u64  (highest WAL record seq folded in)
//!       28   section_count  u32
//!       32   section table  (kind u32, offset u64, len u64) × count
//!        …   section payloads
//! total-8   crc64           u64 over bytes [0, total_len − 8)
//! ```
//!
//! `applied_seq` is the crash-consistency hinge: WAL records carry
//! strictly increasing sequence numbers, and replay skips records at or
//! below the snapshot's watermark — so compaction's "write snapshot,
//! then truncate WAL" pair needs no atomicity (a crash between the two
//! merely leaves covered records that replay ignores).
//!
//! Section kinds: `1` = graph (exactly one), `2` = cached output (any
//! number). Readers are **buffered, not mmap'd**: the file is read
//! once into memory and decoded with bounds-checked cursors, so a 10k
//! node dataset loads in milliseconds and corruption anywhere —
//! truncation, foreign bytes, bit rot, a newer version — surfaces as a
//! typed [`StoreError`], never a panic or an out-of-bounds read.

use std::io::{Read, Write};

use lbc_core::{ClusterOutput, DegreeMode, LbConfig, LoadState, QueryRule, Rounds, Seed};
use lbc_graph::{Graph, NodeId};

use crate::error::StoreError;
use crate::format::{crc64, Dec, Enc};

/// First 8 bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"LBCSNAP1";
/// The format version this build reads and writes.
pub const VERSION: u32 = 1;

const SECTION_GRAPH: u32 = 1;
const SECTION_OUTPUT: u32 = 2;
/// Content-addressed reference to a graph stored outside the snapshot
/// (a `graphs/<hash>.g` blob in the store directory). Lets every
/// snapshot rewrite — and every dataset sharing the same graph — reuse
/// one CSR encoding instead of embedding it again.
const SECTION_GRAPH_REF: u32 = 3;
/// Fixed header bytes before the section table.
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 4;
/// Bytes per section-table row.
const TABLE_ROW: usize = 4 + 8 + 8;

/// Everything a snapshot holds: the graph, its cached clusterings, and
/// the WAL watermark the state is current to.
#[derive(Debug, Clone)]
pub struct DatasetState {
    pub graph: Graph,
    pub entries: Vec<(LbConfig, ClusterOutput)>,
    /// Highest WAL record seq already folded into this state; replay
    /// skips records at or below it.
    pub applied_seq: u64,
}

/// A content-addressed pointer to a graph payload stored outside the
/// snapshot file. `hash` is the crc64 of the encoded CSR payload (the
/// exact bytes [`encode_graph_payload`] produces), so the blob is
/// self-validating; `n`/`m` are recorded so output sections can be
/// validated — and sized — without resolving the blob first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphRef {
    pub hash: u64,
    pub n: u64,
    pub m: u64,
}

impl GraphRef {
    /// The reference for `g` (hashes the encoded payload).
    pub fn of(g: &Graph) -> GraphRef {
        GraphRef {
            hash: crc64(&encode_graph(g)),
            n: g.n() as u64,
            m: g.m() as u64,
        }
    }
}

/// Where a parsed snapshot's graph lives: embedded in the file, or in
/// a shared content-addressed blob the caller must resolve.
#[derive(Debug, Clone)]
pub enum GraphSource {
    Inline(Graph),
    Ref(GraphRef),
}

/// A parsed snapshot whose graph may still be an unresolved reference.
/// [`Store::load_raw`](crate::Store::load_raw) resolves refs against
/// the store's blob directory; self-contained consumers (the
/// replication stream) use [`parse_snapshot`], which requires inline.
#[derive(Debug, Clone)]
pub struct SnapshotContents {
    pub graph: GraphSource,
    pub entries: Vec<(LbConfig, ClusterOutput)>,
    pub applied_seq: u64,
}

/// The graph-section payload for `g` — also the exact byte content of
/// a `graphs/<hash>.g` blob (so blobs and inline sections share one
/// codec and one hash space).
pub fn encode_graph_payload(g: &Graph) -> Vec<u8> {
    encode_graph(g)
}

/// Decode a graph-section payload (inline section or blob file).
pub fn decode_graph_payload(bytes: &[u8]) -> Result<Graph, StoreError> {
    decode_graph(bytes)
}

fn encode_graph(g: &Graph) -> Vec<u8> {
    let (offsets, neighbours) = g.csr_parts();
    let offsets64: Vec<u64> = offsets.iter().map(|&o| o as u64).collect();
    let mut e = Enc::new();
    e.u64(g.n() as u64);
    e.u64(offsets64.len() as u64);
    e.u64_slice(&offsets64);
    e.u64(neighbours.len() as u64);
    e.u32_slice(neighbours);
    e.into_bytes()
}

fn decode_graph(bytes: &[u8]) -> Result<Graph, StoreError> {
    let mut d = Dec::new(bytes, "graph section");
    let n = d.u64()? as usize;
    let offsets_len = d.len_prefix(8)?;
    if n.checked_add(1) != Some(offsets_len) {
        return Err(StoreError::Corrupt(format!(
            "graph section: {offsets_len} offsets for {n} nodes"
        )));
    }
    let offsets: Vec<usize> = d
        .u64_vec(offsets_len)?
        .into_iter()
        .map(|o| o as usize)
        .collect();
    let neighbours_len = d.len_prefix(4)?;
    let neighbours: Vec<NodeId> = d.u32_vec(neighbours_len)?;
    if !d.is_empty() {
        return Err(StoreError::Corrupt(
            "graph section has trailing bytes".into(),
        ));
    }
    Graph::from_csr(offsets, neighbours).map_err(|e| StoreError::Corrupt(e.to_string()))
}

fn encode_config(e: &mut Enc, cfg: &LbConfig) {
    e.f64(cfg.beta);
    match cfg.rounds {
        Rounds::Explicit(t) => {
            e.u8(0);
            e.u64(t as u64);
        }
        Rounds::Resolved(t) => {
            e.u8(1);
            e.u64(t as u64);
        }
    }
    e.u64(cfg.seed);
    match cfg.query {
        QueryRule::PaperThreshold => {
            e.u8(0);
            e.u64(0);
        }
        QueryRule::ScaledThreshold(c) => {
            e.u8(1);
            e.u64(c.to_bits());
        }
        QueryRule::ArgMax => {
            e.u8(2);
            e.u64(0);
        }
    }
    match cfg.degree_mode {
        DegreeMode::Regular => {
            e.u8(0);
            e.u64(0);
        }
        DegreeMode::Capped(d) => {
            e.u8(1);
            e.u64(d as u64);
        }
        DegreeMode::Auto => {
            e.u8(2);
            e.u64(0);
        }
    }
    match cfg.seeding_trials {
        None => {
            e.u8(0);
            e.u64(0);
        }
        Some(t) => {
            e.u8(1);
            e.u64(t as u64);
        }
    }
}

fn decode_config(d: &mut Dec<'_>) -> Result<LbConfig, StoreError> {
    let beta = d.f64()?;
    if !(beta > 0.0 && beta <= 1.0) {
        return Err(StoreError::Corrupt(format!(
            "config beta {beta} out of (0, 1]"
        )));
    }
    let rounds_tag = d.u8()?;
    let t = d.u64()? as usize;
    if t == 0 {
        return Err(StoreError::Corrupt("config has zero rounds".into()));
    }
    let rounds = match rounds_tag {
        0 => Rounds::Explicit(t),
        1 => Rounds::Resolved(t),
        other => {
            return Err(StoreError::Corrupt(format!("unknown rounds tag {other}")));
        }
    };
    let seed = d.u64()?;
    let query_tag = d.u8()?;
    let query_arg = d.u64()?;
    let query = match query_tag {
        0 => QueryRule::PaperThreshold,
        1 => QueryRule::ScaledThreshold(f64::from_bits(query_arg)),
        2 => QueryRule::ArgMax,
        other => {
            return Err(StoreError::Corrupt(format!("unknown query tag {other}")));
        }
    };
    let degree_tag = d.u8()?;
    let degree_arg = d.u64()? as usize;
    let degree_mode = match degree_tag {
        0 => DegreeMode::Regular,
        1 => DegreeMode::Capped(degree_arg),
        2 => DegreeMode::Auto,
        other => {
            return Err(StoreError::Corrupt(format!("unknown degree tag {other}")));
        }
    };
    let trials_tag = d.u8()?;
    let trials_arg = d.u64()? as usize;
    let seeding_trials = match trials_tag {
        0 => None,
        1 => Some(trials_arg),
        other => {
            return Err(StoreError::Corrupt(format!("unknown trials tag {other}")));
        }
    };
    Ok(LbConfig {
        beta,
        rounds,
        seed,
        query,
        degree_mode,
        seeding_trials,
    })
}

fn encode_output(cfg: &LbConfig, out: &ClusterOutput) -> Vec<u8> {
    let mut e = Enc::new();
    encode_config(&mut e, cfg);
    e.u64(out.rounds as u64);
    e.u64(out.seeds.len() as u64);
    for s in &out.seeds {
        e.u32(s.node);
        e.u64(s.id);
    }
    e.u64(out.raw_labels.len() as u64);
    for l in &out.raw_labels {
        match l {
            None => {
                e.u8(0);
                e.u64(0);
            }
            Some(id) => {
                e.u8(1);
                e.u64(*id);
            }
        }
    }
    e.u64(out.partition.n() as u64);
    e.u64(out.partition.k() as u64);
    e.u32_slice(out.partition.labels());
    e.u64(out.states.len() as u64);
    // States are the bulk of an output: flatten each state's sorted
    // `(id, load)` entries to interleaved u64 words (loads by bit
    // pattern) and bulk-encode.
    let mut words: Vec<u64> = Vec::new();
    for st in &out.states {
        e.u64(st.entries().len() as u64);
        words.clear();
        for &(id, load) in st.entries() {
            words.push(id);
            words.push(load.to_bits());
        }
        e.u64_slice(&words);
    }
    e.into_bytes()
}

fn decode_output(bytes: &[u8], graph_n: usize) -> Result<(LbConfig, ClusterOutput), StoreError> {
    let mut d = Dec::new(bytes, "output section");
    let cfg = decode_config(&mut d)?;
    let rounds = d.u64()? as usize;
    let seed_count = d.len_prefix(12)?;
    let mut seeds = Vec::with_capacity(seed_count);
    for _ in 0..seed_count {
        let node = d.u32()?;
        let id = d.u64()?;
        seeds.push(Seed { node, id });
    }
    let raw_count = d.len_prefix(9)?;
    let mut raw_labels = Vec::with_capacity(raw_count);
    for _ in 0..raw_count {
        let tag = d.u8()?;
        let id = d.u64()?;
        raw_labels.push(match tag {
            0 => None,
            1 => Some(id),
            other => {
                return Err(StoreError::Corrupt(format!(
                    "unknown raw-label tag {other}"
                )));
            }
        });
    }
    let part_n = d.u64()? as usize;
    let k = d.u64()? as usize;
    if part_n != graph_n {
        return Err(StoreError::Corrupt(format!(
            "output covers {part_n} nodes but the graph has {graph_n}"
        )));
    }
    if raw_labels.len() != part_n {
        return Err(StoreError::Corrupt(format!(
            "{} raw labels for {part_n} nodes",
            raw_labels.len()
        )));
    }
    let labels = d.u32_vec(part_n)?;
    let partition =
        lbc_graph::Partition::with_k(labels, k).map_err(|e| StoreError::Corrupt(e.to_string()))?;
    let state_count = d.len_prefix(8)?;
    if state_count != part_n {
        return Err(StoreError::Corrupt(format!(
            "{state_count} states for {part_n} nodes"
        )));
    }
    let mut states = Vec::with_capacity(state_count);
    for v in 0..state_count {
        let entry_count = d.len_prefix(16)?;
        let words = d.u64_vec(2 * entry_count)?;
        let mut entries = Vec::with_capacity(entry_count);
        let mut prev: Option<u64> = None;
        for pair in words.chunks_exact(2) {
            let (id, load) = (pair[0], f64::from_bits(pair[1]));
            if prev.is_some_and(|p| p >= id) {
                return Err(StoreError::Corrupt(format!(
                    "node {v}: state entries unsorted or duplicated at seed id {id}"
                )));
            }
            prev = Some(id);
            entries.push((id, load));
        }
        states.push(LoadState::from_sorted_entries(entries));
    }
    if !d.is_empty() {
        return Err(StoreError::Corrupt(
            "output section has trailing bytes".into(),
        ));
    }
    Ok((
        cfg,
        ClusterOutput {
            partition,
            raw_labels,
            seeds,
            rounds,
            states,
        },
    ))
}

/// Serialise a **self-contained** dataset snapshot (graph embedded),
/// returning the bytes written. `applied_seq` is the highest WAL
/// record seq this state already folds in (0 for a fresh dataset);
/// replay skips records at or below it. This is the format the
/// replication layer streams to joining followers, which have no blob
/// directory to resolve references against.
pub fn write_snapshot<W: Write>(
    graph: &Graph,
    entries: &[(&LbConfig, &ClusterOutput)],
    applied_seq: u64,
    w: W,
) -> Result<u64, StoreError> {
    write_sections(
        (SECTION_GRAPH, encode_graph(graph)),
        entries,
        applied_seq,
        w,
    )
}

/// Serialise a snapshot whose graph section is a content-addressed
/// reference — the CSR lives once in a shared blob, so rewrites and
/// same-graph datasets stop re-encoding it.
pub fn write_snapshot_ref<W: Write>(
    graph_ref: GraphRef,
    entries: &[(&LbConfig, &ClusterOutput)],
    applied_seq: u64,
    w: W,
) -> Result<u64, StoreError> {
    let mut e = Enc::new();
    e.u64(graph_ref.hash);
    e.u64(graph_ref.n);
    e.u64(graph_ref.m);
    write_sections((SECTION_GRAPH_REF, e.into_bytes()), entries, applied_seq, w)
}

fn write_sections<W: Write>(
    graph_section: (u32, Vec<u8>),
    entries: &[(&LbConfig, &ClusterOutput)],
    applied_seq: u64,
    mut w: W,
) -> Result<u64, StoreError> {
    let mut payloads: Vec<(u32, Vec<u8>)> = Vec::with_capacity(1 + entries.len());
    payloads.push(graph_section);
    for (cfg, out) in entries {
        payloads.push((SECTION_OUTPUT, encode_output(cfg, out)));
    }
    let table_len = payloads.len() * TABLE_ROW;
    let body_len: usize = payloads.iter().map(|(_, p)| p.len()).sum();
    let total_len = HEADER_LEN + table_len + body_len + 8;

    let mut e = Enc::new();
    e.bytes(&MAGIC);
    e.u32(VERSION);
    e.u64(total_len as u64);
    e.u64(applied_seq);
    e.u32(payloads.len() as u32);
    let mut offset = HEADER_LEN + table_len;
    for (kind, p) in &payloads {
        e.u32(*kind);
        e.u64(offset as u64);
        e.u64(p.len() as u64);
        offset += p.len();
    }
    for (_, p) in &payloads {
        e.bytes(p);
    }
    debug_assert_eq!(e.len() + 8, total_len);
    let body = e.into_bytes();
    let crc = crc64(&body);
    w.write_all(&body)?;
    w.write_all(&crc.to_le_bytes())?;
    w.flush()?;
    Ok(total_len as u64)
}

/// Parse a snapshot produced by [`write_snapshot`].
///
/// The reader is buffered (one `read_to_end`), checks magic, version,
/// declared length and checksum before touching any payload, and
/// validates every structural invariant while decoding.
pub fn read_snapshot<R: Read>(mut r: R) -> Result<DatasetState, StoreError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    parse_snapshot(&buf)
}

/// [`read_snapshot`] over an in-memory byte slice. Requires a
/// self-contained snapshot: a graph-*reference* section is an error
/// here, because there is no blob directory to resolve it against —
/// use [`parse_snapshot_contents`] and resolve the ref yourself.
pub fn parse_snapshot(buf: &[u8]) -> Result<DatasetState, StoreError> {
    let contents = parse_snapshot_contents(buf)?;
    match contents.graph {
        GraphSource::Inline(graph) => Ok(DatasetState {
            graph,
            entries: contents.entries,
            applied_seq: contents.applied_seq,
        }),
        GraphSource::Ref(r) => Err(StoreError::Corrupt(format!(
            "snapshot references external graph blob {:016x}; resolve it through a Store",
            r.hash
        ))),
    }
}

/// Parse a snapshot without resolving its graph: the graph comes back
/// either inline or as a [`GraphRef`] the caller resolves against the
/// store's `graphs/` blob directory.
pub fn parse_snapshot_contents(buf: &[u8]) -> Result<SnapshotContents, StoreError> {
    if buf.len() < 8 {
        return Err(StoreError::Truncated {
            needed: 8,
            available: buf.len(),
            context: "snapshot magic",
        });
    }
    if buf[..8] != MAGIC {
        return Err(StoreError::BadMagic {
            found: buf[..8].try_into().unwrap(),
        });
    }
    if buf.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            needed: HEADER_LEN,
            available: buf.len(),
            context: "snapshot header",
        });
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let total_len = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let total_len = usize::try_from(total_len)
        .map_err(|_| StoreError::Corrupt(format!("declared length {total_len} overflows")))?;
    if buf.len() < total_len {
        return Err(StoreError::Truncated {
            needed: total_len,
            available: buf.len(),
            context: "snapshot body",
        });
    }
    if buf.len() > total_len {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after declared snapshot end",
            buf.len() - total_len
        )));
    }
    if total_len < HEADER_LEN + 8 {
        return Err(StoreError::Corrupt(format!(
            "declared length {total_len} smaller than header + trailer"
        )));
    }
    let stored_crc = u64::from_le_bytes(buf[total_len - 8..].try_into().unwrap());
    let computed = crc64(&buf[..total_len - 8]);
    if stored_crc != computed {
        return Err(StoreError::ChecksumMismatch {
            expected: stored_crc,
            found: computed,
            context: "snapshot",
        });
    }

    let applied_seq = u64::from_le_bytes(buf[20..28].try_into().unwrap());
    let section_count = u32::from_le_bytes(buf[28..32].try_into().unwrap()) as usize;
    let table_end = HEADER_LEN + section_count * TABLE_ROW;
    if table_end > total_len - 8 {
        return Err(StoreError::Corrupt(format!(
            "section table ({section_count} rows) exceeds the file"
        )));
    }
    let mut table = Dec::new(&buf[HEADER_LEN..table_end], "section table");
    let mut graph: Option<GraphSource> = None;
    let mut outputs: Vec<&[u8]> = Vec::new();
    for _ in 0..section_count {
        let kind = table.u32()?;
        let offset = table.u64()? as usize;
        let len = table.u64()? as usize;
        let end = offset.checked_add(len).filter(|&e| e <= total_len - 8);
        let Some(end) = end else {
            return Err(StoreError::Corrupt(format!(
                "section [{offset}, +{len}) out of bounds"
            )));
        };
        if offset < table_end {
            return Err(StoreError::Corrupt(format!(
                "section offset {offset} overlaps the header"
            )));
        }
        let payload = &buf[offset..end];
        match kind {
            SECTION_GRAPH => {
                if graph.is_some() {
                    return Err(StoreError::Corrupt("duplicate graph section".into()));
                }
                graph = Some(GraphSource::Inline(decode_graph(payload)?));
            }
            SECTION_GRAPH_REF => {
                if graph.is_some() {
                    return Err(StoreError::Corrupt("duplicate graph section".into()));
                }
                let mut d = Dec::new(payload, "graph-ref section");
                let r = GraphRef {
                    hash: d.u64()?,
                    n: d.u64()?,
                    m: d.u64()?,
                };
                if !d.is_empty() {
                    return Err(StoreError::Corrupt(
                        "graph-ref section has trailing bytes".into(),
                    ));
                }
                graph = Some(GraphSource::Ref(r));
            }
            SECTION_OUTPUT => outputs.push(payload),
            other => {
                return Err(StoreError::Corrupt(format!("unknown section kind {other}")));
            }
        }
    }
    let graph = graph.ok_or_else(|| StoreError::Corrupt("snapshot has no graph section".into()))?;
    let graph_n = match &graph {
        GraphSource::Inline(g) => g.n(),
        GraphSource::Ref(r) => usize::try_from(r.n)
            .map_err(|_| StoreError::Corrupt(format!("graph ref node count {} overflows", r.n)))?,
    };
    let mut entries = Vec::with_capacity(outputs.len());
    for payload in outputs {
        entries.push(decode_output(payload, graph_n)?);
    }
    Ok(SnapshotContents {
        graph,
        entries,
        applied_seq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_core::cluster;
    use lbc_graph::generators;

    fn sample_state() -> DatasetState {
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let cfg = LbConfig::new(0.5, 20).with_seed(3);
        let out = cluster(&g, &cfg).unwrap();
        let cfg2 = cfg.clone().with_seed(4).with_query(QueryRule::ArgMax);
        let out2 = cluster(&g, &cfg2).unwrap();
        DatasetState {
            graph: g,
            entries: vec![(cfg, out), (cfg2, out2)],
            applied_seq: 42,
        }
    }

    fn snapshot_bytes(state: &DatasetState) -> Vec<u8> {
        let entries: Vec<(&LbConfig, &ClusterOutput)> =
            state.entries.iter().map(|(c, o)| (c, o)).collect();
        let mut buf = Vec::new();
        let n = write_snapshot(&state.graph, &entries, state.applied_seq, &mut buf).unwrap();
        assert_eq!(n as usize, buf.len());
        buf
    }

    fn assert_bit_identical(a: &ClusterOutput, b: &ClusterOutput) {
        assert_eq!(a.bit_diff(b), None);
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let state = sample_state();
        let buf = snapshot_bytes(&state);
        let loaded = parse_snapshot(&buf).unwrap();
        assert_eq!(loaded.graph, state.graph);
        assert_eq!(loaded.entries.len(), 2);
        for ((cfg_a, out_a), (cfg_b, out_b)) in state.entries.iter().zip(&loaded.entries) {
            assert_eq!(cfg_a, cfg_b);
            assert_bit_identical(out_a, out_b);
        }
    }

    #[test]
    fn graph_only_snapshot_round_trips() {
        let (g, _) = generators::ring_of_cliques(3, 5, 1).unwrap();
        let mut buf = Vec::new();
        write_snapshot(&g, &[], 0, &mut buf).unwrap();
        let loaded = parse_snapshot(&buf).unwrap();
        assert_eq!(loaded.graph, g);
        assert!(loaded.entries.is_empty());
    }

    #[test]
    fn config_variants_round_trip() {
        let (g, _) = generators::ring_of_cliques(2, 6, 0).unwrap();
        for cfg in [
            LbConfig::new(0.25, 10)
                .with_query(QueryRule::ScaledThreshold(1.5))
                .with_degree_mode(DegreeMode::Capped(7))
                .with_seeding_trials(9),
            LbConfig {
                rounds: Rounds::Resolved(33),
                ..LbConfig::new(1.0, 33)
            },
        ] {
            let out = match cluster(&g, &cfg) {
                Ok(o) => o,
                Err(_) => continue, // seedless config; encoding is what matters
            };
            let mut buf = Vec::new();
            write_snapshot(&g, &[(&cfg, &out)], 0, &mut buf).unwrap();
            let loaded = parse_snapshot(&buf).unwrap();
            assert_eq!(loaded.entries[0].0, cfg);
        }
    }

    #[test]
    fn truncation_anywhere_is_typed() {
        let buf = snapshot_bytes(&sample_state());
        for cut in [0, 3, 8, 15, HEADER_LEN + 5, buf.len() / 2, buf.len() - 1] {
            let e = parse_snapshot(&buf[..cut]).unwrap_err();
            assert!(
                matches!(
                    e,
                    StoreError::Truncated { .. } | StoreError::BadMagic { .. }
                ),
                "cut at {cut}: {e}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut buf = snapshot_bytes(&sample_state());
        let mut wrong = buf.clone();
        wrong[0] ^= 0xff;
        assert!(matches!(
            parse_snapshot(&wrong),
            Err(StoreError::BadMagic { .. })
        ));
        buf[8] = 99; // version
        assert!(matches!(
            parse_snapshot(&buf),
            Err(StoreError::UnsupportedVersion {
                found: 99,
                supported: VERSION
            })
        ));
    }

    #[test]
    fn payload_corruption_is_a_checksum_mismatch() {
        let buf = snapshot_bytes(&sample_state());
        // Flip one bit in every byte position past the header; each
        // must fail closed (checksum, or a typed structural error —
        // never a panic, never silent acceptance).
        for pos in [HEADER_LEN + 1, buf.len() / 2, buf.len() - 9] {
            let mut bad = buf.clone();
            bad[pos] ^= 0x01;
            let e = parse_snapshot(&bad).unwrap_err();
            assert!(
                matches!(e, StoreError::ChecksumMismatch { .. }),
                "pos {pos}: {e}"
            );
        }
    }

    #[test]
    fn graph_ref_snapshot_round_trips_without_resolving() {
        let state = sample_state();
        let entries: Vec<(&LbConfig, &ClusterOutput)> =
            state.entries.iter().map(|(c, o)| (c, o)).collect();
        let r = GraphRef::of(&state.graph);
        assert_eq!(r.n, state.graph.n() as u64);
        assert_eq!(r.m, state.graph.m() as u64);
        let mut buf = Vec::new();
        let n = write_snapshot_ref(r, &entries, 7, &mut buf).unwrap();
        assert_eq!(n as usize, buf.len());
        // Ref snapshots are strictly smaller: no embedded CSR.
        assert!(buf.len() < snapshot_bytes(&state).len());
        let contents = parse_snapshot_contents(&buf).unwrap();
        let GraphSource::Ref(got) = contents.graph else {
            panic!("expected a graph ref");
        };
        assert_eq!(got, r);
        assert_eq!(contents.applied_seq, 7);
        assert_eq!(contents.entries.len(), state.entries.len());
        for ((cfg_a, out_a), (cfg_b, out_b)) in state.entries.iter().zip(&contents.entries) {
            assert_eq!(cfg_a, cfg_b);
            assert_bit_identical(out_a, out_b);
        }
        // The self-contained parser refuses refs with a typed error.
        assert!(matches!(parse_snapshot(&buf), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn graph_payload_codec_matches_ref_hash() {
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let payload = encode_graph_payload(&g);
        assert_eq!(crc64(&payload), GraphRef::of(&g).hash);
        assert_eq!(decode_graph_payload(&payload).unwrap(), g);
        assert!(decode_graph_payload(&payload[..payload.len() - 1]).is_err());
    }

    #[test]
    fn trailing_junk_is_corrupt() {
        let mut buf = snapshot_bytes(&sample_state());
        buf.extend_from_slice(b"junk");
        assert!(matches!(parse_snapshot(&buf), Err(StoreError::Corrupt(_))));
    }
}
