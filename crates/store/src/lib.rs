//! `lbc-store` — crash-safe persistence for the serving engine.
//!
//! The registry cache is resident state: graphs plus every cached
//! [`ClusterOutput`] (states, partition, seeds). Losing it to a restart
//! means re-clustering every `(graph, config)` pair cold, even though
//! the incremental subsystem can rebuild a labelling from resident
//! states in a handful of warm rounds. This crate persists that state
//! with the classic snapshot + write-ahead-log split:
//!
//! * **Snapshots** ([`snapshot`]) — one checksummed binary file per
//!   dataset holding the graph's CSR arrays and every cached output,
//!   `f64`s stored by bit pattern so reloads are bit-exact.
//! * **Delta WAL** ([`wal`]) — mutations are appended (policy + the
//!   [`GraphDelta`] in binary framing, with a strictly increasing
//!   sequence number) and fsynced *before* the in-memory graph swaps,
//!   so the on-disk pair `(snapshot, wal)` always replays to the live
//!   state: [`Store::load`] applies each logged delta with
//!   [`lbc_graph::Graph::apply_delta`] and re-runs the identical
//!   (deterministic) [`lbc_core::warm_start`] per logged policy,
//!   recovering the exact pre-crash labelling.
//! * **Compaction** — a snapshot records the highest WAL seq it folds
//!   ([`Store::save`] takes that watermark explicitly) and replay skips
//!   covered records, so snapshot-write and WAL-truncate need no
//!   atomicity between them: a crash at any point between the two just
//!   leaves covered records that the next load ignores, and concurrent
//!   appends racing a snapshot write are never lost.
//!
//! Files are fsynced before they count (write-to-temp + rename for
//! rewrites, `sync_data` after appends, best-effort directory syncs
//! after renames), so the guarantees are meant to hold across power
//! loss, not just process kills. The serving registry wires this up
//! behind `attach_store` with spill-on-insert / spill-on-evict
//! policies; the `lbc save` / `lbc load` commands expose it directly.

pub mod error;
pub mod format;
pub mod snapshot;
pub mod wal;

use std::collections::BTreeSet;
use std::fs;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use lbc_core::{warm_start, ClusterOutput, LbConfig};
use lbc_graph::{Graph, GraphDelta};
use lbc_obs::{Counter, EventKind, Histogram, Obs};

pub use error::StoreError;
pub use snapshot::{
    decode_graph_payload, encode_graph_payload, parse_snapshot, parse_snapshot_contents,
    read_snapshot, write_snapshot, write_snapshot_ref, DatasetState, GraphRef, GraphSource,
    SnapshotContents, MAGIC, VERSION,
};
pub use wal::{
    append_record, decode_record, encode_record, read_wal, scan_wal, ReplayPolicy, WalReadout,
    WalRecord, WalScan,
};

/// What replaying a dataset's WAL over its snapshot did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BootReport {
    /// Complete WAL records replayed (0 = pure snapshot boot).
    pub wal_records: usize,
    /// Total warm rounds executed across all replayed refreshes.
    pub warm_rounds: usize,
    /// Cached outputs dropped during replay (invalidate-policy records
    /// or warm starts that failed).
    pub invalidated: usize,
    /// Bytes of a torn (crash-interrupted) final WAL record, ignored.
    pub torn_tail_bytes: usize,
}

/// A directory of dataset snapshots and their write-ahead logs.
///
/// File layout: `<dir>/<encoded-name>.snap` + `<dir>/<encoded-name>.wal`
/// where the encoding percent-escapes anything outside `[A-Za-z0-9._-]`
/// (dataset names are often file paths).
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    /// Fault-injection oracle for WAL appends — `None` in production,
    /// a seeded script under the chaos harness (torn writes, failed
    /// fsyncs) so crash-recovery paths run under test.
    io_faults: Option<std::sync::Arc<dyn lbc_faults::IoFaultHook>>,
    metrics: StoreMetrics,
}

/// Persistence-plane metric handles, live from [`Store::open`];
/// [`Store::register_obs`] adopts them into a node's metrics registry
/// under `store_*` names.
struct StoreMetrics {
    /// Committed WAL appends (fault-injected failures don't count).
    wal_appends: std::sync::Arc<Counter>,
    /// Encoded bytes those appends added to logs.
    wal_bytes: std::sync::Arc<Counter>,
    /// `sync_data`/`sync_all` latency on the append and snapshot paths.
    fsync_ns: std::sync::Arc<Histogram>,
    /// Snapshot folds ([`Store::save`] completions).
    compactions: std::sync::Arc<Counter>,
    /// Crash-torn WAL tails truncated away before an append.
    torn_tails_healed: std::sync::Arc<Counter>,
    /// Ring for `WalTornHealed` events once an `Obs` is attached.
    obs: std::sync::Mutex<Option<std::sync::Arc<Obs>>>,
}

impl StoreMetrics {
    fn new() -> StoreMetrics {
        StoreMetrics {
            wal_appends: std::sync::Arc::new(Counter::new()),
            wal_bytes: std::sync::Arc::new(Counter::new()),
            fsync_ns: std::sync::Arc::new(Histogram::new()),
            compactions: std::sync::Arc::new(Counter::new()),
            torn_tails_healed: std::sync::Arc::new(Counter::new()),
            obs: std::sync::Mutex::new(None),
        }
    }
}

impl std::fmt::Debug for StoreMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreMetrics")
            .field("wal_appends", &self.wal_appends.get())
            .field("wal_bytes", &self.wal_bytes.get())
            .field("compactions", &self.compactions.get())
            .field("torn_tails_healed", &self.torn_tails_healed.get())
            .finish()
    }
}

const SNAP_EXT: &str = "snap";
const WAL_EXT: &str = "wal";
/// Replication membership file (see [`Store::save_membership`]).
const MEMBERSHIP_FILE: &str = "membership";

/// Replication term/vote file (see [`Store::save_vote`]).
const VOTE_FILE: &str = "term-vote";

const VOTE_MAGIC: [u8; 4] = *b"LBCV";
/// Its tiny framing: magic + u32 length + bytes + crc64 of the bytes.
const MEMBERSHIP_MAGIC: [u8; 4] = *b"LBCM";
/// Subdirectory holding content-addressed graph blobs (`<crc64>.g`).
/// Snapshots written by [`Store::save`] reference a blob instead of
/// embedding the CSR, so every rewrite of a dataset — and every
/// dataset sharing the same graph — stores the encoding once.
const GRAPHS_DIR: &str = "graphs";
const GRAPH_EXT: &str = "g";

fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

fn decode_name(enc: &str) -> Option<String> {
    let mut out = Vec::with_capacity(enc.len());
    let bytes = enc.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = enc.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

impl Store {
    /// Open (creating if needed) a store directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Store, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Store {
            dir,
            io_faults: None,
            metrics: StoreMetrics::new(),
        })
    }

    /// Install a WAL-append fault oracle (chaos harness only).
    pub fn set_io_faults(&mut self, hook: std::sync::Arc<dyn lbc_faults::IoFaultHook>) {
        self.io_faults = Some(hook);
    }

    /// Adopt the store's metric handles into a node's metrics registry
    /// (`store_*` names) and route `WalTornHealed` events to its ring.
    /// The handles have been live since [`Store::open`], so nothing
    /// recorded before attachment is lost.
    pub fn register_obs(&self, obs: std::sync::Arc<Obs>) {
        obs.register_counter(
            "store_wal_appends_total",
            std::sync::Arc::clone(&self.metrics.wal_appends),
        );
        obs.register_counter(
            "store_wal_bytes_total",
            std::sync::Arc::clone(&self.metrics.wal_bytes),
        );
        obs.register_histogram(
            "store_fsync_ns",
            std::sync::Arc::clone(&self.metrics.fsync_ns),
        );
        obs.register_counter(
            "store_compactions_total",
            std::sync::Arc::clone(&self.metrics.compactions),
        );
        obs.register_counter(
            "store_torn_tails_healed_total",
            std::sync::Arc::clone(&self.metrics.torn_tails_healed),
        );
        *self.metrics.obs.lock().unwrap() = Some(obs);
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snap_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{}.{SNAP_EXT}", encode_name(name)))
    }

    fn wal_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{}.{WAL_EXT}", encode_name(name)))
    }

    fn graphs_dir(&self) -> PathBuf {
        self.dir.join(GRAPHS_DIR)
    }

    fn graph_path(&self, hash: u64) -> PathBuf {
        self.graphs_dir().join(format!("{hash:016x}.{GRAPH_EXT}"))
    }

    /// Names of every dataset with a snapshot in the store, sorted.
    pub fn dataset_names(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(SNAP_EXT) {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if let Some(name) = decode_name(stem) {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Whether a snapshot exists for `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.snap_path(name).exists()
    }

    /// Size of `name`'s WAL in bytes (0 when absent).
    pub fn wal_bytes(&self, name: &str) -> u64 {
        fs::metadata(self.wal_path(name)).map_or(0, |m| m.len())
    }

    /// Size of `name`'s snapshot in bytes (0 when absent).
    pub fn snapshot_bytes(&self, name: &str) -> u64 {
        fs::metadata(self.snap_path(name)).map_or(0, |m| m.len())
    }

    /// Total bytes of shared graph blobs in the store.
    pub fn graph_blob_bytes(&self) -> u64 {
        let Ok(entries) = fs::read_dir(self.graphs_dir()) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some(GRAPH_EXT))
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    /// Total on-disk footprint of the store (snapshots + WALs + shared
    /// graph blobs).
    pub fn total_bytes(&self) -> u64 {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let flat: u64 = entries
            .flatten()
            .filter(|e| {
                let p = e.path();
                matches!(
                    p.extension().and_then(|x| x.to_str()),
                    Some(SNAP_EXT) | Some(WAL_EXT)
                )
            })
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum();
        flat + self.graph_blob_bytes()
    }

    /// Best-effort fsync of the store directory itself, so renames,
    /// creations and removals survive power loss. Failures are ignored
    /// (not every platform/filesystem supports directory fsync).
    fn sync_dir(&self) {
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }

    /// The highest WAL record seq ever issued for `name`: the maximum
    /// of the snapshot's `applied_seq` watermark and the last record in
    /// the WAL (0 for a fresh dataset). Capture this under the same
    /// lock as the state it describes and pass it to [`Store::save`].
    pub fn last_seq(&self, name: &str) -> Result<u64, StoreError> {
        let snap_seq = match fs::File::open(self.snap_path(name)) {
            Ok(mut f) => {
                let mut header = [0u8; 28];
                f.read_exact(&mut header)
                    .map_err(|_| StoreError::Truncated {
                        needed: 28,
                        available: 0,
                        context: "snapshot header",
                    })?;
                if header[..8] != MAGIC {
                    return Err(StoreError::BadMagic {
                        found: header[..8].try_into().unwrap(),
                    });
                }
                u64::from_le_bytes(header[20..28].try_into().unwrap())
            }
            Err(_) => 0,
        };
        let wal_seq = match fs::read(self.wal_path(name)) {
            Ok(buf) => scan_wal(&buf).last_seq,
            Err(_) => 0,
        };
        Ok(snap_seq.max(wal_seq))
    }

    /// Write a fresh snapshot of `name` recording `applied_seq` — the
    /// highest WAL record seq already folded into `graph`/`entries`
    /// (use [`Store::last_seq`] captured under the same lock as the
    /// state; 0 for a fresh dataset) — then drop the covered WAL
    /// records.
    ///
    /// Crash-safety does **not** depend on the drop: replay skips
    /// records at or below the snapshot's watermark, so a crash
    /// between the snapshot rename and the WAL truncation merely
    /// leaves covered records that the next load ignores; records
    /// appended by a racing mutation (seq above the watermark) are
    /// preserved and replayed. The snapshot lands via write-to-temp +
    /// fsync + rename, so readers never observe a half-written file.
    /// Returns the snapshot size in bytes.
    pub fn save<'a, I>(
        &self,
        name: &str,
        graph: &Graph,
        entries: I,
        applied_seq: u64,
    ) -> Result<u64, StoreError>
    where
        I: IntoIterator<Item = (&'a LbConfig, &'a ClusterOutput)>,
    {
        let entries: Vec<(&LbConfig, &ClusterOutput)> = entries.into_iter().collect();
        // Publish the graph as a content-addressed blob first, then a
        // snapshot that references it: identical graphs (across
        // rewrites of one dataset or across datasets) store one CSR
        // encoding. A crash after the blob lands leaves at worst an
        // unreferenced blob, which [`Store::remove`]'s sweep collects.
        let payload = encode_graph_payload(graph);
        let graph_ref = GraphRef {
            hash: format::crc64(&payload),
            n: graph.n() as u64,
            m: graph.m() as u64,
        };
        self.write_graph_blob(graph_ref.hash, &payload)?;
        let snap = self.snap_path(name);
        let tmp = snap.with_extension("snap.tmp");
        let bytes = {
            let f = fs::File::create(&tmp)?;
            let mut w = BufWriter::new(f);
            let n = write_snapshot_ref(graph_ref, &entries, applied_seq, &mut w)?;
            let f = w.into_inner().map_err(|e| StoreError::Io(e.to_string()))?;
            // Durable before the rename publishes it: a power cut must
            // never leave the published name pointing at a hole.
            let fsync0 = std::time::Instant::now();
            f.sync_all()?;
            self.metrics
                .fsync_ns
                .record(fsync0.elapsed().as_nanos() as u64);
            n
        };
        fs::rename(&tmp, &snap)?;
        self.sync_dir();
        self.drop_covered_wal(name, applied_seq)?;
        self.metrics.compactions.inc();
        // Re-saving a dataset whose graph changed just unreferenced its
        // previous blob; collect it now rather than only on `remove`
        // (a long-lived server re-saves many times, never removes).
        self.gc_graph_blobs();
        Ok(bytes)
    }

    /// Write a graph blob if its hash is not already present
    /// (content-addressed: same hash ⇒ same bytes, nothing to do).
    fn write_graph_blob(&self, hash: u64, payload: &[u8]) -> Result<(), StoreError> {
        let path = self.graph_path(hash);
        if path.exists() {
            return Ok(());
        }
        fs::create_dir_all(self.graphs_dir())?;
        let tmp = path.with_extension("g.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(payload)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        if let Ok(d) = fs::File::open(self.graphs_dir()) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Resolve a snapshot's graph reference against the blob
    /// directory, verifying the content hash and declared dimensions.
    fn resolve_graph_ref(&self, r: &GraphRef) -> Result<Graph, StoreError> {
        let path = self.graph_path(r.hash);
        let payload = fs::read(&path)
            .map_err(|_| StoreError::Corrupt(format!("missing graph blob {:016x}", r.hash)))?;
        let found = format::crc64(&payload);
        if found != r.hash {
            return Err(StoreError::ChecksumMismatch {
                expected: r.hash,
                found,
                context: "graph blob",
            });
        }
        let g = decode_graph_payload(&payload)?;
        if g.n() as u64 != r.n || g.m() as u64 != r.m {
            return Err(StoreError::Corrupt(format!(
                "graph blob {:016x} is {}n/{}m but the snapshot expects {}n/{}m",
                r.hash,
                g.n(),
                g.m(),
                r.n,
                r.m
            )));
        }
        Ok(g)
    }

    /// Drop WAL records with seq ≤ `applied_seq` (pure space
    /// reclamation; replay already skips them).
    fn drop_covered_wal(&self, name: &str, applied_seq: u64) -> Result<(), StoreError> {
        let path = self.wal_path(name);
        if applied_seq == 0 || !path.exists() {
            return Ok(());
        }
        let buf = fs::read(&path)?;
        // A log this store cannot parse is not worth preserving bytes
        // from — the snapshot just written supersedes it.
        let readout = read_wal(&buf).unwrap_or_default();
        let kept: Vec<&WalRecord> = readout
            .records
            .iter()
            .filter(|r| r.seq > applied_seq)
            .collect();
        if kept.is_empty() {
            fs::remove_file(&path)?;
            self.sync_dir();
            return Ok(());
        }
        if kept.len() == readout.records.len() && readout.torn_tail_bytes == 0 {
            return Ok(()); // nothing to drop
        }
        let tmp = path.with_extension("wal.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            for rec in kept {
                append_record(&mut f, rec)?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        self.sync_dir();
        Ok(())
    }

    /// Append one delta record to `name`'s WAL (creating it if absent)
    /// and fsync it. Call this *before* mutating the in-memory graph,
    /// so the log write-ahead invariant holds. The record's seq is one
    /// above [`Store::last_seq`]. A crash-torn tail left by a previous
    /// process is truncated away first — otherwise the new record
    /// would land after unreadable garbage and poison the whole log.
    /// Returns the new WAL size.
    pub fn append_delta(
        &self,
        name: &str,
        policy: &ReplayPolicy,
        delta: &GraphDelta,
    ) -> Result<u64, StoreError> {
        self.append_delta_seq(name, policy, delta).map(|(_, b)| b)
    }

    /// [`Store::append_delta`], also returning the sequence number the
    /// record was assigned — the replication layer needs it to label
    /// the streamed record, and the registry mirrors it so in-memory
    /// and on-disk lineages can never drift.
    pub fn append_delta_seq(
        &self,
        name: &str,
        policy: &ReplayPolicy,
        delta: &GraphDelta,
    ) -> Result<(u64, u64), StoreError> {
        if !self.contains(name) {
            return Err(StoreError::UnknownDataset(name.to_string()));
        }
        let path = self.wal_path(name);
        let existed = path.exists();
        let mut wal_seq = 0u64;
        if existed {
            let buf = fs::read(&path)?;
            let scan = wal::scan_wal(&buf);
            wal_seq = scan.last_seq;
            if scan.complete_len < buf.len() {
                fs::OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(scan.complete_len as u64)?;
                self.metrics.torn_tails_healed.inc();
                let obs = self.metrics.obs.lock().unwrap().clone();
                if let Some(obs) = obs {
                    obs.events.record(
                        EventKind::WalTornHealed,
                        format!("{name}: {} bytes truncated", buf.len() - scan.complete_len),
                    );
                }
            }
        }
        let seq = self.last_seq(name)?.max(wal_seq) + 1;
        let fault = self
            .io_faults
            .as_ref()
            .map(|h| h.next_append(name))
            .unwrap_or(lbc_faults::IoFault::Pass);
        if fault == lbc_faults::IoFault::FailWrite {
            return Err(StoreError::Io("injected WAL write failure".to_string()));
        }
        let record = WalRecord {
            seq,
            policy: policy.clone(),
            delta: delta.clone(),
        };
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if let lbc_faults::IoFault::Torn(keep) = fault {
            // A crash mid-append: only a prefix of the record reaches
            // the disk. The caller sees a failure (the record did NOT
            // commit); the next append's torn-tail scan truncates the
            // garbage away — the exact path this fault exists to test.
            let bytes = encode_record(&record);
            let keep = keep.min(bytes.len().saturating_sub(1));
            f.write_all(&bytes[..keep])?;
            let _ = f.sync_data();
            return Err(StoreError::Io("injected torn WAL append".to_string()));
        }
        let encoded = encode_record(&record);
        let mut w = BufWriter::new(f);
        w.write_all(&encoded)?;
        w.flush()?;
        f = w.into_inner().map_err(|e| StoreError::Io(e.to_string()))?;
        if fault == lbc_faults::IoFault::FailFsync {
            // The bytes went down but durability is unknown — report
            // failure, exactly like a dying disk's fsync would.
            return Err(StoreError::Io("injected WAL fsync failure".to_string()));
        }
        let fsync0 = std::time::Instant::now();
        f.sync_data()?;
        self.metrics
            .fsync_ns
            .record(fsync0.elapsed().as_nanos() as u64);
        self.metrics.wal_appends.inc();
        self.metrics.wal_bytes.add(encoded.len() as u64);
        if !existed {
            self.sync_dir();
        }
        Ok((seq, self.wal_bytes(name)))
    }

    /// Persist the replication membership spec (`id@addr,...`) so a
    /// restarted node rejoins the same fixed group its peers still
    /// carry — quorum arithmetic must never disagree across restarts.
    /// Write-to-temp + fsync + rename, checksummed like everything
    /// else in the store.
    pub fn save_membership(&self, spec: &str) -> Result<(), StoreError> {
        let path = self.dir.join(MEMBERSHIP_FILE);
        let tmp = path.with_extension("tmp");
        let mut buf = Vec::with_capacity(spec.len() + 16);
        buf.extend_from_slice(&MEMBERSHIP_MAGIC);
        buf.extend_from_slice(&(spec.len() as u32).to_le_bytes());
        buf.extend_from_slice(spec.as_bytes());
        buf.extend_from_slice(&format::crc64(spec.as_bytes()).to_le_bytes());
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        self.sync_dir();
        Ok(())
    }

    /// Load the persisted membership spec, if one is present and
    /// intact. Corruption is an error (a node must not silently run
    /// quorumless when its group config rots), absence is `Ok(None)`.
    pub fn load_membership(&self) -> Result<Option<String>, StoreError> {
        let path = self.dir.join(MEMBERSHIP_FILE);
        let buf = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if buf.len() < 16 || buf[..4] != MEMBERSHIP_MAGIC {
            return Err(StoreError::Corrupt("membership file framing".to_string()));
        }
        let len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
        if buf.len() != 8 + len + 8 {
            return Err(StoreError::Corrupt("membership file length".to_string()));
        }
        let spec = &buf[8..8 + len];
        let crc = u64::from_le_bytes(buf[8 + len..].try_into().unwrap());
        if format::crc64(spec) != crc {
            return Err(StoreError::ChecksumMismatch {
                expected: crc,
                found: format::crc64(spec),
                context: "membership file",
            });
        }
        String::from_utf8(spec.to_vec())
            .map(Some)
            .map_err(|_| StoreError::Corrupt("membership file utf-8".to_string()))
    }

    /// Persist the replication term and the candidate granted this
    /// node's vote in it (`u64::MAX` = term observed, no vote cast).
    /// This is the single-vote-per-term guarantee's crash edge: a
    /// voter that grants, dies, and reboots inside the same election
    /// must refuse every other candidate at that term, so the pair
    /// goes to disk *before* the grant is confirmed to the candidate.
    /// Write-to-temp + fsync + rename, checksummed.
    pub fn save_vote(&self, term: u64, voted_for: u64) -> Result<(), StoreError> {
        let path = self.dir.join(VOTE_FILE);
        let tmp = path.with_extension("tmp");
        let mut body = [0u8; 16];
        body[..8].copy_from_slice(&term.to_le_bytes());
        body[8..].copy_from_slice(&voted_for.to_le_bytes());
        let mut buf = Vec::with_capacity(28);
        buf.extend_from_slice(&VOTE_MAGIC);
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&format::crc64(&body).to_le_bytes());
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        self.sync_dir();
        Ok(())
    }

    /// Load the persisted `(term, voted_for)` pair, if present and
    /// intact. Corruption is an error (a voter with rotted vote memory
    /// must not pretend it never voted), absence is `Ok(None)`.
    pub fn load_vote(&self) -> Result<Option<(u64, u64)>, StoreError> {
        let path = self.dir.join(VOTE_FILE);
        let buf = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if buf.len() != 28 || buf[..4] != VOTE_MAGIC {
            return Err(StoreError::Corrupt("term-vote file framing".to_string()));
        }
        let body = &buf[4..20];
        let crc = u64::from_le_bytes(buf[20..].try_into().unwrap());
        if format::crc64(body) != crc {
            return Err(StoreError::ChecksumMismatch {
                expected: crc,
                found: format::crc64(body),
                context: "term-vote file",
            });
        }
        Ok(Some((
            u64::from_le_bytes(body[..8].try_into().unwrap()),
            u64::from_le_bytes(body[8..].try_into().unwrap()),
        )))
    }

    /// Read `name`'s snapshot and WAL without replaying anything.
    /// Graph references are resolved against the store's blob
    /// directory (legacy inline-graph snapshots still load).
    pub fn load_raw(&self, name: &str) -> Result<(DatasetState, WalReadout), StoreError> {
        let snap_path = self.snap_path(name);
        if !snap_path.exists() {
            return Err(StoreError::UnknownDataset(name.to_string()));
        }
        let buf = fs::read(&snap_path)?;
        let contents = parse_snapshot_contents(&buf)?;
        let graph = match contents.graph {
            GraphSource::Inline(g) => g,
            GraphSource::Ref(r) => self.resolve_graph_ref(&r)?,
        };
        let state = DatasetState {
            graph,
            entries: contents.entries,
            applied_seq: contents.applied_seq,
        };
        let wal_path = self.wal_path(name);
        let readout = if wal_path.exists() {
            let mut buf = Vec::new();
            BufReader::new(fs::File::open(&wal_path)?).read_to_end(&mut buf)?;
            read_wal(&buf)?
        } else {
            WalReadout::default()
        };
        Ok((state, readout))
    }

    /// Load `name`: read its snapshot, then replay the WAL tail —
    /// each record patches the graph ([`Graph::apply_delta`]) and
    /// either drops the cached outputs (invalidate policy) or re-runs
    /// the identical deterministic [`warm_start`] per entry, so the
    /// returned state is **exactly** the pre-shutdown resident state,
    /// every `f64` bit included.
    pub fn load(&self, name: &str) -> Result<(DatasetState, BootReport), StoreError> {
        let (mut state, readout) = self.load_raw(name)?;
        // Records at or below the snapshot's watermark are already
        // folded into it (a compaction crashed before truncating the
        // WAL); replaying them would double-apply the mutation.
        let pending: Vec<&WalRecord> = readout
            .records
            .iter()
            .filter(|r| r.seq > state.applied_seq)
            .collect();
        let mut report = BootReport {
            wal_records: pending.len(),
            torn_tail_bytes: readout.torn_tail_bytes,
            ..BootReport::default()
        };
        for rec in pending {
            let patched = state.graph.apply_delta(&rec.delta)?;
            match &rec.policy {
                ReplayPolicy::Invalidate => {
                    report.invalidated += state.entries.len();
                    state.entries.clear();
                }
                ReplayPolicy::WarmRefresh(wcfg) => {
                    let mut refreshed = Vec::with_capacity(state.entries.len());
                    for (cfg, out) in state.entries.drain(..) {
                        match warm_start(&patched, &cfg, &out, &rec.delta, wcfg) {
                            Ok(w) => {
                                report.warm_rounds += w.rounds_run;
                                refreshed.push((cfg, w.output));
                            }
                            Err(_) => report.invalidated += 1,
                        }
                    }
                    state.entries = refreshed;
                }
            }
            state.graph = patched;
            state.applied_seq = rec.seq;
        }
        Ok((state, report))
    }

    /// Complete WAL records with seq strictly above `seq` — the
    /// replication catch-up read: a follower holding state current to
    /// watermark `seq` needs exactly these records to converge.
    pub fn wal_records_after(&self, name: &str, seq: u64) -> Result<Vec<WalRecord>, StoreError> {
        if !self.contains(name) {
            return Err(StoreError::UnknownDataset(name.to_string()));
        }
        let path = self.wal_path(name);
        if !path.exists() {
            return Ok(Vec::new());
        }
        let buf = fs::read(&path)?;
        let readout = read_wal(&buf)?;
        Ok(readout
            .records
            .into_iter()
            .filter(|r| r.seq > seq)
            .collect())
    }

    /// Delete `name`'s snapshot and WAL (no-op when absent), then
    /// sweep graph blobs no longer referenced by any snapshot.
    pub fn remove(&self, name: &str) -> Result<(), StoreError> {
        for path in [self.snap_path(name), self.wal_path(name)] {
            if path.exists() {
                fs::remove_file(path)?;
            }
        }
        self.sync_dir();
        self.gc_graph_blobs();
        Ok(())
    }

    /// Best-effort collection of unreferenced graph blobs. An
    /// unreadable snapshot aborts the sweep (its references are
    /// unknown) and individual failures are ignored: an orphaned blob
    /// costs bytes, deleting a live one would cost data. Also sweeps
    /// `*.g.tmp` leftovers from blob writes that crashed before their
    /// rename, once they are old enough to not be a write in flight.
    fn gc_graph_blobs(&self) {
        self.gc_graph_blobs_with(Duration::from_secs(60));
    }

    fn gc_graph_blobs_with(&self, tmp_max_age: Duration) {
        let Ok(names) = self.dataset_names() else {
            return;
        };
        let mut live: BTreeSet<u64> = BTreeSet::new();
        for name in names {
            let Ok(buf) = fs::read(self.snap_path(&name)) else {
                return;
            };
            let Ok(contents) = parse_snapshot_contents(&buf) else {
                return;
            };
            if let GraphSource::Ref(r) = contents.graph {
                live.insert(r.hash);
            }
        }
        let Ok(entries) = fs::read_dir(self.graphs_dir()) else {
            return;
        };
        for e in entries.flatten() {
            let p = e.path();
            match p.extension().and_then(|x| x.to_str()) {
                Some(ext) if ext == GRAPH_EXT => {
                    let hash = p
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .and_then(|s| u64::from_str_radix(s, 16).ok());
                    if !matches!(hash, Some(h) if live.contains(&h)) {
                        let _ = fs::remove_file(&p);
                    }
                }
                Some("tmp") => {
                    // A crash between `File::create(tmp)` and the
                    // rename strands the temp file forever; age-gate
                    // the sweep so a concurrent in-flight write (young
                    // mtime) is never yanked out from under its owner.
                    let aged = e
                        .metadata()
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age >= tmp_max_age);
                    if aged {
                        let _ = fs::remove_file(&p);
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_core::{cluster, WarmStartConfig};
    use lbc_graph::generators;

    fn tmp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir()
            .join("lbc-store-unit")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn assert_entries_bit_identical(
        a: &[(LbConfig, ClusterOutput)],
        b: &[(LbConfig, ClusterOutput)],
    ) {
        assert_eq!(a.len(), b.len());
        for ((ca, oa), (cb, ob)) in a.iter().zip(b) {
            assert_eq!(ca, cb);
            assert_eq!(oa.bit_diff(ob), None);
        }
    }

    #[test]
    fn name_encoding_round_trips() {
        for name in ["ring", "/tmp/g raphs/x.txt", "a%b", "планета", "a/b\\c"] {
            let enc = encode_name(name);
            assert!(enc
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"._-%".contains(&b)));
            assert_eq!(decode_name(&enc).as_deref(), Some(name));
        }
    }

    #[test]
    fn save_load_round_trip_no_wal() {
        let store = tmp_store("roundtrip");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        let cfg = LbConfig::new(0.5, 25).with_seed(5);
        let out = cluster(&g, &cfg).unwrap();
        let bytes = store.save("ring", &g, [(&cfg, &out)], 0).unwrap();
        assert!(bytes > 0);
        assert_eq!(store.snapshot_bytes("ring"), bytes);
        assert_eq!(store.wal_bytes("ring"), 0);
        assert_eq!(store.dataset_names().unwrap(), vec!["ring".to_string()]);
        assert!(store.contains("ring"));
        let (state, report) = store.load("ring").unwrap();
        assert_eq!(report, BootReport::default());
        assert_eq!(state.graph, g);
        assert_entries_bit_identical(&state.entries, &[(cfg, out)]);
    }

    #[test]
    fn wal_replay_recovers_the_post_delta_state() {
        let store = tmp_store("replay");
        let (g, truth) = generators::planted_partition(3, 40, 0.4, 0.01, 5).unwrap();
        let cfg = LbConfig::new(1.0 / 3.0, 80).with_seed(2);
        let out = cluster(&g, &cfg).unwrap();
        store.save("pp", &g, [(&cfg, &out)], 0).unwrap();

        // Mutate twice, logging each delta — the live side would hold
        // the warm-started outputs; the store only has the log.
        let wcfg = WarmStartConfig::default();
        let d1 = generators::k_edge_flip_delta(&g, &truth, 3, 7).unwrap();
        let g1 = g.apply_delta(&d1).unwrap();
        let w1 = warm_start(&g1, &cfg, &out, &d1, &wcfg).unwrap();
        store
            .append_delta("pp", &ReplayPolicy::WarmRefresh(wcfg.clone()), &d1)
            .unwrap();
        let d2 = generators::k_edge_flip_delta(&g1, &truth, 2, 9).unwrap();
        let g2 = g1.apply_delta(&d2).unwrap();
        let w2 = warm_start(&g2, &cfg, &w1.output, &d2, &wcfg).unwrap();
        store
            .append_delta("pp", &ReplayPolicy::WarmRefresh(wcfg), &d2)
            .unwrap();
        assert!(store.wal_bytes("pp") > 0);

        let (state, report) = store.load("pp").unwrap();
        assert_eq!(report.wal_records, 2);
        assert_eq!(report.warm_rounds, w1.rounds_run + w2.rounds_run);
        assert_eq!(state.graph, g2);
        assert_entries_bit_identical(&state.entries, &[(cfg, w2.output)]);
    }

    #[test]
    fn invalidate_records_drop_entries_on_replay() {
        let store = tmp_store("invalidate");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        let cfg = LbConfig::new(0.5, 25).with_seed(5);
        let out = cluster(&g, &cfg).unwrap();
        store.save("ring", &g, [(&cfg, &out)], 0).unwrap();
        let mut d = GraphDelta::new();
        d.remove_edge(0, 1).add_edge(0, 11);
        store
            .append_delta("ring", &ReplayPolicy::Invalidate, &d)
            .unwrap();
        let (state, report) = store.load("ring").unwrap();
        assert_eq!(report.invalidated, 1);
        assert!(state.entries.is_empty());
        assert_eq!(state.graph, g.apply_delta(&d).unwrap());
    }

    #[test]
    fn save_folds_only_the_covered_wal_records() {
        let store = tmp_store("fold");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        let cfg = LbConfig::new(0.5, 25).with_seed(5);
        let out = cluster(&g, &cfg).unwrap();
        store.save("ring", &g, [(&cfg, &out)], 0).unwrap();
        assert_eq!(store.last_seq("ring").unwrap(), 0);
        let mut d1 = GraphDelta::new();
        d1.remove_edge(0, 1);
        store
            .append_delta("ring", &ReplayPolicy::Invalidate, &d1)
            .unwrap();
        let mark = store.last_seq("ring").unwrap();
        assert_eq!(mark, 1);
        let mut d2 = GraphDelta::new();
        d2.add_edge(0, 1);
        store
            .append_delta("ring", &ReplayPolicy::Invalidate, &d2)
            .unwrap();
        assert_eq!(store.last_seq("ring").unwrap(), 2);
        // Fold only the first record (captured state covered seq 1).
        let g1 = g.apply_delta(&d1).unwrap();
        store.save("ring", &g1, [], mark).unwrap();
        let (state, report) = store.load("ring").unwrap();
        assert_eq!(report.wal_records, 1, "suffix survived the fold");
        assert_eq!(state.graph, g, "d2 re-added the edge");
        assert_eq!(state.applied_seq, 2, "replay advances the watermark");
        // Folding everything empties the WAL; seqs keep rising after.
        store
            .save("ring", &state.graph, [], state.applied_seq)
            .unwrap();
        assert_eq!(store.wal_bytes("ring"), 0);
        assert_eq!(store.last_seq("ring").unwrap(), 2);
        store
            .append_delta("ring", &ReplayPolicy::Invalidate, &d1)
            .unwrap();
        let (_, report) = store.load("ring").unwrap();
        assert_eq!(report.wal_records, 1, "post-fold append must replay");
    }

    #[test]
    fn crash_between_snapshot_and_truncation_does_not_double_apply() {
        // Simulate the compaction crash window: the snapshot already
        // folds a record, but the WAL still contains it. Replay must
        // skip the covered record instead of double-applying it.
        let store = tmp_store("crashfold");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        store.save("ring", &g, [], 0).unwrap();
        let mut d = GraphDelta::new();
        d.remove_edge(0, 1);
        store
            .append_delta("ring", &ReplayPolicy::Invalidate, &d)
            .unwrap();
        let g1 = g.apply_delta(&d).unwrap();
        // "Crash": write the folded snapshot but keep the WAL intact by
        // restoring it after save truncates.
        let wal_path = store.wal_path("ring");
        let wal_bytes = fs::read(&wal_path).unwrap();
        store.save("ring", &g1, [], 1).unwrap();
        fs::write(&wal_path, &wal_bytes).unwrap();
        // Without seq filtering this replay would remove edge {0,1}
        // from g1 (where it no longer exists) and error out.
        let (state, report) = store.load("ring").unwrap();
        assert_eq!(report.wal_records, 0, "covered record replayed");
        assert_eq!(state.graph, g1);
    }

    #[test]
    fn torn_wal_tail_is_ignored() {
        let store = tmp_store("torn");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        store.save("ring", &g, [], 0).unwrap();
        let mut d = GraphDelta::new();
        d.remove_edge(0, 1);
        store
            .append_delta("ring", &ReplayPolicy::Invalidate, &d)
            .unwrap();
        // Simulate a crash mid-append of a second record.
        let wal = store.wal_path("ring");
        let mut bytes = fs::read(&wal).unwrap();
        let full = bytes.clone();
        bytes.extend_from_slice(&full[..full.len() / 2]);
        fs::write(&wal, &bytes).unwrap();
        let (state, report) = store.load("ring").unwrap();
        assert_eq!(report.wal_records, 1);
        assert!(report.torn_tail_bytes > 0);
        assert_eq!(state.graph, g.apply_delta(&d).unwrap());
    }

    #[test]
    fn missing_dataset_and_append_without_snapshot_are_typed() {
        let store = tmp_store("missing");
        assert!(matches!(
            store.load("nope"),
            Err(StoreError::UnknownDataset(_))
        ));
        assert!(matches!(
            store.append_delta("nope", &ReplayPolicy::Invalidate, &GraphDelta::new()),
            Err(StoreError::UnknownDataset(_))
        ));
        assert_eq!(store.total_bytes(), 0);
        assert!(store.dataset_names().unwrap().is_empty());
        store.remove("nope").unwrap(); // no-op
    }

    #[test]
    fn total_bytes_counts_snapshots_wals_and_graph_blobs() {
        let store = tmp_store("bytes");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        store.save("a", &g, [], 0).unwrap();
        store.save("b", &g, [], 0).unwrap();
        let mut d = GraphDelta::new();
        d.remove_edge(0, 1);
        store
            .append_delta("a", &ReplayPolicy::Invalidate, &d)
            .unwrap();
        assert!(store.graph_blob_bytes() > 0);
        assert_eq!(
            store.total_bytes(),
            store.snapshot_bytes("a")
                + store.snapshot_bytes("b")
                + store.wal_bytes("a")
                + store.graph_blob_bytes()
        );
        store.remove("a").unwrap();
        assert_eq!(store.dataset_names().unwrap(), vec!["b".to_string()]);
    }

    #[test]
    fn same_graph_datasets_share_one_blob() {
        let store = tmp_store("shareblob");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        store.save("a", &g, [], 0).unwrap();
        let one = store.graph_blob_bytes();
        assert!(one > 0);
        // Second dataset, identical graph: the blob is reused, so the
        // footprint grows only by the (CSR-free) snapshot file.
        store.save("b", &g, [], 0).unwrap();
        assert_eq!(store.graph_blob_bytes(), one);
        // Rewriting a snapshot doesn't re-store the graph either.
        store.save("a", &g, [], 0).unwrap();
        assert_eq!(store.graph_blob_bytes(), one);
        // A genuinely different graph gets its own blob.
        let (g2, _) = generators::ring_of_cliques(3, 7, 1).unwrap();
        store.save("c", &g2, [], 0).unwrap();
        assert!(store.graph_blob_bytes() > one);
        // Removing one sharer keeps the blob; removing the last
        // reference collects it.
        store.remove("a").unwrap();
        let (state, _) = store.load("b").unwrap();
        assert_eq!(state.graph, g);
        store.remove("b").unwrap();
        store.remove("c").unwrap();
        assert_eq!(store.graph_blob_bytes(), 0);
    }

    #[test]
    fn resave_with_changed_graph_collects_the_replaced_blob() {
        let store = tmp_store("resavegc");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        store.save("ring", &g, [], 0).unwrap();
        let first = store.graph_blob_bytes();
        assert!(first > 0);
        // Re-save the same dataset with a different graph: the old
        // blob is unreferenced and must be swept by the save itself —
        // a serving node re-saves for its whole lifetime and may never
        // call `remove`.
        let (g2, _) = generators::ring_of_cliques(3, 7, 1).unwrap();
        store.save("ring", &g2, [], 1).unwrap();
        let blobs = fs::read_dir(store.dir().join(GRAPHS_DIR))
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some(GRAPH_EXT))
            .count();
        assert_eq!(blobs, 1, "replaced graph blob was not collected");
        // The surviving blob is the live one: the dataset still loads.
        let (state, _) = store.load("ring").unwrap();
        assert_eq!(state.graph, g2);
    }

    #[test]
    fn stale_tmp_blobs_are_swept_young_ones_kept() {
        let store = tmp_store("tmpsweep");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        store.save("ring", &g, [], 0).unwrap();
        // A crash between blob create and rename strands a tmp file.
        let stranded = store.dir().join(GRAPHS_DIR).join("deadbeef.g.tmp");
        fs::write(&stranded, b"half-written").unwrap();
        // Young tmp files survive (they may be a write in flight)...
        store.gc_graph_blobs_with(Duration::from_secs(60));
        assert!(stranded.exists(), "in-flight tmp file was yanked");
        // ...aged ones are swept.
        store.gc_graph_blobs_with(Duration::ZERO);
        assert!(!stranded.exists(), "stale tmp file survived the sweep");
        // The live blob is untouched either way.
        let (state, _) = store.load("ring").unwrap();
        assert_eq!(state.graph, g);
    }

    #[test]
    fn missing_or_corrupt_graph_blob_is_typed() {
        let store = tmp_store("badblob");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        store.save("ring", &g, [], 0).unwrap();
        let blob = {
            let dir = store.dir().join(GRAPHS_DIR);
            fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path()
        };
        let good = fs::read(&blob).unwrap();
        // Corrupt one byte: the content hash no longer matches.
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0x01;
        fs::write(&blob, &bad).unwrap();
        assert!(matches!(
            store.load("ring"),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        // Remove it entirely: typed corruption, not a panic.
        fs::remove_file(&blob).unwrap();
        assert!(matches!(store.load("ring"), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn legacy_inline_graph_snapshot_still_loads() {
        let store = tmp_store("legacy");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        let cfg = LbConfig::new(0.5, 25).with_seed(5);
        let out = cluster(&g, &cfg).unwrap();
        // Write the pre-blob format by hand: graph embedded inline.
        let entries = [(&cfg, &out)];
        let mut buf = Vec::new();
        snapshot::write_snapshot(&g, &entries, 0, &mut buf).unwrap();
        fs::write(store.dir().join("old.snap"), &buf).unwrap();
        let (state, _) = store.load("old").unwrap();
        assert_eq!(state.graph, g);
        assert_entries_bit_identical(&state.entries, &[(cfg, out)]);
    }

    #[test]
    fn wal_records_after_filters_by_watermark() {
        let store = tmp_store("after");
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        store.save("ring", &g, [], 0).unwrap();
        assert!(store.wal_records_after("ring", 0).unwrap().is_empty());
        let mut d1 = GraphDelta::new();
        d1.remove_edge(0, 1);
        let mut d2 = GraphDelta::new();
        d2.add_edge(0, 1);
        store
            .append_delta("ring", &ReplayPolicy::Invalidate, &d1)
            .unwrap();
        store
            .append_delta("ring", &ReplayPolicy::Invalidate, &d2)
            .unwrap();
        let all = store.wal_records_after("ring", 0).unwrap();
        assert_eq!(
            all.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2],
            "records come back in seq order"
        );
        let tail = store.wal_records_after("ring", 1).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].seq, 2);
        assert_eq!(tail[0].delta, d2);
        assert!(store.wal_records_after("ring", 2).unwrap().is_empty());
        assert!(matches!(
            store.wal_records_after("nope", 0),
            Err(StoreError::UnknownDataset(_))
        ));
    }
}
