//! Little-endian byte encoding primitives and the store checksum.
//!
//! Everything on disk goes through [`Enc`]/[`Dec`]: fixed-width
//! little-endian integers, `f64`s stored **by bit pattern** (so
//! snapshot round trips are bit-exact, including negative zero, NaN
//! payloads and subnormals), and a CRC-64 (reflected ECMA-182, the
//! `xz` polynomial) over the raw bytes.

use crate::error::StoreError;

const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

/// Slicing-by-8 tables: `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][i]` advances a byte through `k` further zero
/// bytes, letting the hot loop fold 8 input bytes per iteration (a
/// multi-GB/s checksum instead of ~300 MB/s — snapshots are megabytes,
/// and the whole point of the store is millisecond warm boots).
const fn crc64_tables() -> [[u64; 256]; 8] {
    let mut tables = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut r = i as u64;
        let mut bit = 0;
        while bit < 8 {
            r = if r & 1 == 1 {
                CRC64_POLY ^ (r >> 1)
            } else {
                r >> 1
            };
            bit += 1;
        }
        tables[0][i] = r;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static CRC64_TABLES: [[u64; 256]; 8] = crc64_tables();

/// CRC-64/XZ of `bytes` (reflected ECMA-182 polynomial).
pub fn crc64(bytes: &[u8]) -> u64 {
    let t = &CRC64_TABLES;
    let mut c = !0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        c ^= u64::from_le_bytes(chunk.try_into().unwrap());
        c = t[7][(c & 0xff) as usize]
            ^ t[6][((c >> 8) & 0xff) as usize]
            ^ t[5][((c >> 16) & 0xff) as usize]
            ^ t[4][((c >> 24) & 0xff) as usize]
            ^ t[3][((c >> 32) & 0xff) as usize]
            ^ t[2][((c >> 40) & 0xff) as usize]
            ^ t[1][((c >> 48) & 0xff) as usize]
            ^ t[0][((c >> 56) & 0xff) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u64) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Store an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bulk little-endian encode of a `u32` slice (one reservation,
    /// tight loop — the CSR/label arrays are the bulk of a snapshot).
    pub fn u32_slice(&mut self, vals: &[u32]) {
        self.buf.reserve(vals.len() * 4);
        for &v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Bulk little-endian encode of a `u64` slice.
    pub fn u64_slice(&mut self, vals: &[u64]) {
        self.buf.reserve(vals.len() * 8);
        for &v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder over a byte slice; every read
/// past the end is a typed [`StoreError::Truncated`] naming `context`.
#[derive(Debug)]
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        Dec {
            buf,
            pos: 0,
            context,
        }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                needed: n,
                available: self.remaining(),
                context: self.context,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` stored by bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Bulk decode of `n` little-endian `u32`s: one bounds check, one
    /// allocation, a tight conversion loop — the fast path that keeps a
    /// 10k-node snapshot load in the low milliseconds.
    pub fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, StoreError> {
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Bulk decode of `n` little-endian `u64`s.
    pub fn u64_vec(&mut self, n: usize) -> Result<Vec<u64>, StoreError> {
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a length prefix and sanity-cap it against what could
    /// possibly fit in the remaining bytes (each element takes at least
    /// `min_elem_bytes`), so a corrupted count cannot drive a
    /// multi-gigabyte allocation before the per-element reads fail.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let raw = self.u64()?;
        let cap = self.remaining() / min_elem_bytes.max(1);
        let n = usize::try_from(raw).unwrap_or(usize::MAX);
        if n > cap {
            return Err(StoreError::Truncated {
                needed: n.saturating_mul(min_elem_bytes),
                available: self.remaining(),
                context: self.context,
            });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut e = Enc::new();
        e.u8(0xab);
        e.u32(0xdead_beef);
        e.u64(0x0123_4567_89ab_cdef);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.bytes(b"xyz");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert_eq!(d.u8().unwrap(), 0xab);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(d.take(3).unwrap(), b"xyz");
        assert!(d.is_empty());
    }

    #[test]
    fn over_read_is_typed_truncation() {
        let mut d = Dec::new(&[1, 2], "unit");
        assert!(matches!(
            d.u64(),
            Err(StoreError::Truncated {
                needed: 8,
                available: 2,
                context: "unit"
            })
        ));
    }

    #[test]
    fn len_prefix_caps_corrupt_counts() {
        let mut e = Enc::new();
        e.u64(u64::MAX); // absurd count
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "unit");
        assert!(matches!(d.len_prefix(8), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995d_c9bb_df19_39fa);
        assert_eq!(crc64(b""), 0);
        assert_ne!(crc64(b"a"), crc64(b"b"));
    }

    #[test]
    fn crc64_sliced_matches_bytewise_at_every_length() {
        // The slicing-by-8 fast path must agree with the reference
        // byte-at-a-time recurrence for all alignments and tails.
        let bytewise = |bytes: &[u8]| -> u64 {
            let mut c = !0u64;
            for &b in bytes {
                c = CRC64_TABLES[0][((c ^ b as u64) & 0xff) as usize] ^ (c >> 8);
            }
            !c
        };
        let data: Vec<u8> = (0..185u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc64(&data[..len]), bytewise(&data[..len]), "len {len}");
        }
    }
}
