//! Typed errors for the on-disk store.
//!
//! Corruption is a first-class outcome, not a panic: every way a
//! snapshot or WAL file can be wrong — short file, foreign file, bit
//! rot, newer format — maps to its own variant so callers (and tests)
//! can tell them apart.

use std::fmt;

use lbc_core::driver::ClusterError;
use lbc_graph::GraphError;

/// Everything reading or writing the store can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The file does not start with the snapshot magic — it is not a
    /// snapshot at all (or the first bytes were destroyed).
    BadMagic { found: [u8; 8] },
    /// The snapshot was written by a newer (or unknown) format version.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The file ends before the declared data does.
    Truncated {
        needed: usize,
        available: usize,
        context: &'static str,
    },
    /// The stored checksum does not match the bytes — the payload was
    /// corrupted after it was written.
    ChecksumMismatch {
        expected: u64,
        found: u64,
        context: &'static str,
    },
    /// The bytes decode but violate a structural invariant (section out
    /// of bounds, unsorted state entries, labels out of range, …).
    Corrupt(String),
    /// Filesystem-level failure (open/read/write/rename).
    Io(String),
    /// Replaying the WAL produced a graph error (a delta drifted out of
    /// sync with its snapshot).
    Graph(String),
    /// Replaying the WAL produced a clustering error (warm start could
    /// not be seeded from the snapshot's states).
    Cluster(String),
    /// No snapshot for this dataset in the store directory.
    UnknownDataset(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic { found } => {
                write!(f, "bad snapshot magic {found:02x?}: not an lbc snapshot")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} not supported (this build reads {supported})"
            ),
            StoreError::Truncated {
                needed,
                available,
                context,
            } => write!(
                f,
                "truncated {context}: needed {needed} bytes, only {available} available"
            ),
            StoreError::ChecksumMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "checksum mismatch in {context}: stored {expected:016x}, computed {found:016x}"
            ),
            StoreError::Corrupt(msg) => write!(f, "corrupt store data: {msg}"),
            StoreError::Io(msg) => write!(f, "store i/o error: {msg}"),
            StoreError::Graph(msg) => write!(f, "store replay graph error: {msg}"),
            StoreError::Cluster(msg) => write!(f, "store replay clustering error: {msg}"),
            StoreError::UnknownDataset(name) => {
                write!(f, "no snapshot for dataset '{name}' in the store")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e.to_string())
    }
}

impl From<ClusterError> for StoreError {
    fn from(e: ClusterError) -> Self {
        StoreError::Cluster(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = StoreError::Truncated {
            needed: 16,
            available: 3,
            context: "snapshot header",
        };
        assert!(e.to_string().contains("snapshot header"));
        let e = StoreError::ChecksumMismatch {
            expected: 0xdead,
            found: 0xbeef,
            context: "wal record",
        };
        assert!(e.to_string().contains("dead"));
        let e = StoreError::UnknownDataset("ring".into());
        assert!(e.to_string().contains("ring"));
    }

    #[test]
    fn conversions() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(matches!(StoreError::from(ioe), StoreError::Io(_)));
        let ge = GraphError::SelfLoop { node: 3 };
        assert!(matches!(StoreError::from(ge), StoreError::Graph(_)));
        let ce = ClusterError::EmptyGraph;
        assert!(matches!(StoreError::from(ce), StoreError::Cluster(_)));
    }
}
