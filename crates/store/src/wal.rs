//! The delta write-ahead log.
//!
//! One WAL file per dataset, sitting next to its snapshot. Each record
//! is the binary serialisation of one [`GraphDelta`] (the same
//! header-then-edge-ops framing as the text `lbc_graph::io::write_delta`,
//! in fixed-width little-endian) plus the replay policy the serving
//! layer used, framed as:
//!
//! ```text
//! magic        u32 = "LWAL"
//! payload_len  u32
//! seq          u64   (strictly increasing per dataset)
//! crc64        u64   (over the payload)
//! payload      policy byte [+ warm-start config], delta
//! ```
//!
//! Records are appended (and fsynced) *before* the in-memory graph is
//! swapped, so the log is always a superset of the applied mutations.
//! The **sequence number** is what makes compaction crash-safe: a
//! snapshot records the highest seq it has folded (`applied_seq` in its
//! header), and replay skips records at or below it — so a crash
//! between "snapshot renamed" and "WAL truncated" can never double-
//! apply a delta; truncation is a pure space optimisation. A crash
//! mid-append leaves a **torn tail** — an incomplete final record —
//! which readers tolerate and report (and appenders truncate away); a
//! complete record whose checksum fails is real corruption and a typed
//! error.

use std::io::Write;

use lbc_core::WarmStartConfig;
use lbc_graph::GraphDelta;

use crate::error::StoreError;
use crate::format::{crc64, Dec, Enc};

/// First 4 bytes of every WAL record.
pub const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"LWAL");

/// How a logged delta's cached outputs were (and on replay, will be)
/// handled — mirrors the serving layer's `DeltaPolicy`, recorded in the
/// WAL so recovery re-runs *exactly* the same warm starts.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayPolicy {
    /// Cached outputs were dropped; replay drops them too.
    Invalidate,
    /// Cached outputs were warm-refreshed with this config; replay
    /// re-runs the identical (deterministic) warm starts.
    WarmRefresh(WarmStartConfig),
}

/// One WAL record: a delta and the policy it was applied under.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Strictly increasing per dataset; snapshots record the highest
    /// seq they cover, and replay skips records at or below it.
    pub seq: u64,
    pub policy: ReplayPolicy,
    pub delta: GraphDelta,
}

/// Bytes of a record frame before the payload.
pub(crate) const FRAME_HEADER: usize = 4 + 4 + 8 + 8;

/// Serialise a [`GraphDelta`] in the binary framing (header counts,
/// then added pairs, then removed pairs).
pub(crate) fn encode_delta(e: &mut Enc, d: &GraphDelta) {
    e.u64(d.added_nodes() as u64);
    e.u64(d.added_edges().len() as u64);
    e.u64(d.removed_edges().len() as u64);
    for &(u, v) in d.added_edges() {
        e.u32(u);
        e.u32(v);
    }
    for &(u, v) in d.removed_edges() {
        e.u32(u);
        e.u32(v);
    }
}

/// Parse a delta written by [`encode_delta`].
pub(crate) fn decode_delta(d: &mut Dec<'_>) -> Result<GraphDelta, StoreError> {
    let add_nodes = d.u64()? as usize;
    let added = d.len_prefix(8)?;
    let removed = {
        // The removed count shares the remaining bytes with the added
        // pairs; bound it by what can still fit.
        let raw = d.u64()? as usize;
        let cap = d.remaining().saturating_sub(added * 8) / 8;
        if raw > cap {
            return Err(StoreError::Truncated {
                needed: (added + raw) * 8,
                available: d.remaining(),
                context: "wal delta",
            });
        }
        raw
    };
    let mut delta = GraphDelta::new();
    delta.add_nodes(add_nodes);
    for _ in 0..added {
        let u = d.u32()?;
        let v = d.u32()?;
        delta.add_edge(u, v);
    }
    for _ in 0..removed {
        let u = d.u32()?;
        let v = d.u32()?;
        delta.remove_edge(u, v);
    }
    Ok(delta)
}

fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut e = Enc::new();
    match &rec.policy {
        ReplayPolicy::Invalidate => e.u8(0),
        ReplayPolicy::WarmRefresh(w) => {
            e.u8(1);
            e.f64(w.tolerance);
            e.f64(w.min_decay);
            e.u64(w.patience as u64);
            e.u64(w.max_rounds as u64);
        }
    }
    encode_delta(&mut e, &rec.delta);
    e.into_bytes()
}

fn decode_payload(seq: u64, bytes: &[u8]) -> Result<WalRecord, StoreError> {
    let mut d = Dec::new(bytes, "wal record");
    let policy = match d.u8()? {
        0 => ReplayPolicy::Invalidate,
        1 => {
            let tolerance = d.f64()?;
            let min_decay = d.f64()?;
            let patience = d.u64()? as usize;
            let max_rounds = d.u64()? as usize;
            if tolerance.is_nan()
                || tolerance < 0.0
                || !(0.0..1.0).contains(&min_decay)
                || patience == 0
                || max_rounds == 0
            {
                return Err(StoreError::Corrupt(
                    "wal record: warm-start config out of range".into(),
                ));
            }
            ReplayPolicy::WarmRefresh(WarmStartConfig {
                tolerance,
                min_decay,
                patience,
                max_rounds,
            })
        }
        other => {
            return Err(StoreError::Corrupt(format!(
                "wal record: unknown policy tag {other}"
            )));
        }
    };
    let delta = decode_delta(&mut d)?;
    if !d.is_empty() {
        return Err(StoreError::Corrupt("wal record has trailing bytes".into()));
    }
    Ok(WalRecord { seq, policy, delta })
}

/// Serialise one framed record (magic + length + seq + checksum +
/// payload).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(rec);
    let mut e = Enc::new();
    e.u32(RECORD_MAGIC);
    e.u32(payload.len() as u32);
    e.u64(rec.seq);
    e.u64(crc64(&payload));
    e.bytes(&payload);
    e.into_bytes()
}

/// Append one record to `w` and flush it.
pub fn append_record<W: Write>(mut w: W, rec: &WalRecord) -> Result<(), StoreError> {
    w.write_all(&encode_record(rec))?;
    w.flush()?;
    Ok(())
}

/// Parse exactly one framed record — the replication receive path: a
/// `WAL_REC` wire frame carries precisely the bytes [`encode_record`]
/// wrote, so anything other than one complete record is corruption.
pub fn decode_record(buf: &[u8]) -> Result<WalRecord, StoreError> {
    let readout = read_wal(buf)?;
    if readout.torn_tail_bytes != 0 || readout.records.len() != 1 {
        return Err(StoreError::Corrupt(format!(
            "expected exactly one complete wal record, got {} (+{} torn tail bytes)",
            readout.records.len(),
            readout.torn_tail_bytes
        )));
    }
    Ok(readout.records.into_iter().next().expect("one record"))
}

/// A parsed WAL: complete records plus any torn tail left by a crash.
#[derive(Debug, Clone, Default)]
pub struct WalReadout {
    pub records: Vec<WalRecord>,
    /// Bytes of an incomplete final record (0 on a clean log). Torn
    /// tails are tolerated — the record never took effect before the
    /// crash, because appends are flushed before the graph swap.
    pub torn_tail_bytes: usize,
}

/// A cheap frame walk (magic + length + seq only, no payload decode).
#[derive(Debug, Clone, Copy, Default)]
pub struct WalScan {
    /// Byte length of the complete-record prefix (the whole stream on
    /// a clean log; torn tails end before this).
    pub complete_len: usize,
    /// Highest record seq in the complete prefix (0 when empty).
    pub last_seq: u64,
}

/// Walk a WAL stream's frames, stopping at an incomplete final frame.
/// Appenders truncate to `complete_len` first, so a crash-torn tail can
/// never end up *between* valid records. A mid-stream bad magic returns
/// the full length — genuinely corrupt logs are surfaced by
/// [`read_wal`], not silently truncated.
pub fn scan_wal(buf: &[u8]) -> WalScan {
    let mut scan = WalScan::default();
    let mut pos = 0usize;
    while pos < buf.len() {
        let remaining = buf.len() - pos;
        if remaining < FRAME_HEADER {
            break;
        }
        let magic = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        if magic != RECORD_MAGIC {
            scan.complete_len = buf.len();
            return scan;
        }
        let payload_len = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap()) as usize;
        if remaining - FRAME_HEADER < payload_len {
            break;
        }
        scan.last_seq = u64::from_le_bytes(buf[pos + 8..pos + 16].try_into().unwrap());
        pos += FRAME_HEADER + payload_len;
    }
    scan.complete_len = pos;
    scan
}

/// Parse a WAL byte stream, tolerating a torn tail. Sequence numbers
/// must be strictly increasing (an integrity check on the appenders).
pub fn read_wal(buf: &[u8]) -> Result<WalReadout, StoreError> {
    let mut out = WalReadout::default();
    let mut pos = 0usize;
    let mut prev_seq = 0u64;
    while pos < buf.len() {
        let remaining = buf.len() - pos;
        if remaining < FRAME_HEADER {
            out.torn_tail_bytes = remaining;
            break;
        }
        let magic = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        if magic != RECORD_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "wal record at byte {pos}: bad magic {magic:08x}"
            )));
        }
        let payload_len = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let seq = u64::from_le_bytes(buf[pos + 8..pos + 16].try_into().unwrap());
        let stored_crc = u64::from_le_bytes(buf[pos + 16..pos + 24].try_into().unwrap());
        if remaining - FRAME_HEADER < payload_len {
            out.torn_tail_bytes = remaining;
            break;
        }
        let payload = &buf[pos + FRAME_HEADER..pos + FRAME_HEADER + payload_len];
        let computed = crc64(payload);
        if stored_crc != computed {
            return Err(StoreError::ChecksumMismatch {
                expected: stored_crc,
                found: computed,
                context: "wal record",
            });
        }
        if seq <= prev_seq {
            return Err(StoreError::Corrupt(format!(
                "wal record at byte {pos}: seq {seq} not above predecessor {prev_seq}"
            )));
        }
        prev_seq = seq;
        out.records.push(decode_payload(seq, payload)?);
        pos += FRAME_HEADER + payload_len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        let mut d1 = GraphDelta::new();
        d1.add_nodes(2).add_edge(0, 5).remove_edge(1, 2);
        let mut d2 = GraphDelta::new();
        d2.add_edge(3, 4);
        vec![
            WalRecord {
                seq: 1,
                policy: ReplayPolicy::WarmRefresh(WarmStartConfig::default()),
                delta: d1,
            },
            WalRecord {
                seq: 2,
                policy: ReplayPolicy::Invalidate,
                delta: d2,
            },
            WalRecord {
                seq: 7, // gaps are fine; only monotonicity is required
                policy: ReplayPolicy::Invalidate,
                delta: GraphDelta::new(),
            },
        ]
    }

    #[test]
    fn decode_record_is_the_single_record_inverse() {
        for rec in sample_records() {
            let bytes = encode_record(&rec);
            assert_eq!(decode_record(&bytes).unwrap(), rec);
            // A truncated or padded buffer is not "exactly one record".
            assert!(decode_record(&bytes[..bytes.len() - 1]).is_err());
            let mut two = bytes.clone();
            two.extend_from_slice(&bytes);
            assert!(decode_record(&two).is_err(), "two records rejected");
        }
        assert!(decode_record(&[]).is_err(), "empty buffer rejected");
    }

    fn wal_bytes(records: &[WalRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in records {
            append_record(&mut buf, r).unwrap();
        }
        buf
    }

    #[test]
    fn records_round_trip() {
        let records = sample_records();
        let buf = wal_bytes(&records);
        let readout = read_wal(&buf).unwrap();
        assert_eq!(readout.records, records);
        assert_eq!(readout.torn_tail_bytes, 0);
        let scan = scan_wal(&buf);
        assert_eq!(scan.complete_len, buf.len());
        assert_eq!(scan.last_seq, 7);
        // Empty log is fine.
        let empty = read_wal(&[]).unwrap();
        assert!(empty.records.is_empty());
        assert_eq!(scan_wal(&[]).last_seq, 0);
    }

    #[test]
    fn non_increasing_seqs_are_corrupt() {
        let mut records = sample_records();
        records[2].seq = 2; // duplicates records[1].seq
        let buf = wal_bytes(&records);
        assert!(matches!(read_wal(&buf), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn torn_tail_is_tolerated_and_reported() {
        let records = sample_records();
        let buf = wal_bytes(&records);
        let second_end = buf.len() - encode_record(&records[2]).len();
        // Cut mid-way through the final record, at several depths.
        for cut in [second_end + 1, second_end + 8, buf.len() - 1] {
            let readout = read_wal(&buf[..cut]).unwrap();
            assert_eq!(readout.records, records[..2], "cut at {cut}");
            assert_eq!(readout.torn_tail_bytes, cut - second_end);
            let scan = scan_wal(&buf[..cut]);
            assert_eq!(scan.complete_len, second_end);
            assert_eq!(scan.last_seq, 2);
        }
    }

    #[test]
    fn mid_log_corruption_is_typed() {
        let records = sample_records();
        let buf = wal_bytes(&records);
        // Flip a payload byte of the first record.
        let mut bad = buf.clone();
        bad[20] ^= 0x40;
        assert!(matches!(
            read_wal(&bad),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        // Destroy a record magic.
        let mut bad = buf;
        bad[0] ^= 0xff;
        assert!(matches!(read_wal(&bad), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn delta_framing_matches_builder_accessors() {
        let mut d = GraphDelta::new();
        d.add_nodes(3)
            .add_edge(9, 2)
            .add_edge(1, 7)
            .remove_edge(4, 4 + 1);
        let mut e = Enc::new();
        encode_delta(&mut e, &d);
        let bytes = e.into_bytes();
        let mut dec = Dec::new(&bytes, "test");
        let back = decode_delta(&mut dec).unwrap();
        assert_eq!(back, d);
        assert!(dec.is_empty());
    }
}
