//! Property tests: `write_snapshot ∘ read_snapshot == id`, bit-exactly.
//!
//! The outputs fed through the format here are *synthetic* — seed ids,
//! loads, and label sets are drawn adversarially (subnormals, negative
//! zero, infinities, NaN bit patterns, extreme exponents), not produced
//! by a clustering run — so the round trip is pinned at the format
//! level: every `f64` state word must come back with the identical bit
//! pattern, every id and label unchanged.

use lbc_core::{ClusterOutput, LbConfig, LoadState, QueryRule, Seed};
use lbc_graph::{generators, Partition};
use lbc_store::{parse_snapshot, read_wal, write_snapshot, ReplayPolicy, WalRecord};
use proptest::prelude::*;

/// Reinterpret raw bits as an `f64`, keeping the exact pattern (this is
/// what makes NaN payloads and subnormals reachable).
fn f64_from_raw(bits: u64) -> f64 {
    f64::from_bits(bits)
}

fn synthetic_state(ids: &[u64], bit_patterns: &[u64]) -> LoadState {
    let mut ids: Vec<u64> = ids.to_vec();
    ids.sort_unstable();
    ids.dedup();
    let entries: Vec<(u64, f64)> = ids
        .iter()
        .zip(bit_patterns.iter().cycle())
        .map(|(&id, &bits)| (id, f64_from_raw(bits)))
        .collect();
    LoadState::from_sorted_entries(entries)
}

/// Bit-level equality of state tables (plain bool so it composes with
/// `prop_assert!` inside the property bodies).
fn states_bit_identical(a: &[LoadState], b: &[LoadState]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.entries().len() == y.entries().len()
                && x.entries()
                    .iter()
                    .zip(y.entries())
                    .all(|(&(ia, xa), &(ib, xb))| ia == ib && xa.to_bits() == xb.to_bits())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Snapshot round trip is the identity, f64s compared by bit
    /// pattern (including adversarial patterns: NaNs, ±0, subnormals).
    #[test]
    fn snapshot_round_trip_is_identity(
        graph_seed in 0u64..1000,
        cfg_seed in 0u64..u64::MAX,
        beta_mil in 1usize..1000,
        rounds in 1usize..10_000,
        ids in proptest::collection::vec(0u64..u64::MAX, 1..24),
        // Raw bit patterns: whole-range u64s hit NaN space, infinities,
        // subnormals and negative zero with decent probability…
        wild_bits in proptest::collection::vec(0u64..u64::MAX, 1..24),
        // …and these are pinned adversarial classics, always included.
        label_bits in 0u32..4,
    ) {
        let (graph, truth) = generators::planted_partition(2, 6, 0.7, 0.2, graph_seed).unwrap();
        let n = graph.n();
        let mut bit_patterns = wild_bits.clone();
        bit_patterns.extend_from_slice(&[
            (-0.0f64).to_bits(),
            f64::NAN.to_bits(),
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            1u64,                      // smallest subnormal
            f64::MIN_POSITIVE.to_bits() - 1, // largest subnormal
        ]);
        let states: Vec<LoadState> = (0..n)
            .map(|v| synthetic_state(&ids[v % ids.len()..], &bit_patterns[v % bit_patterns.len()..]))
            .collect();
        let raw_labels: Vec<Option<u64>> = (0..n)
            .map(|v| (v as u32 % 4 != label_bits).then_some(ids[v % ids.len()]))
            .collect();
        let seeds: Vec<Seed> = ids
            .iter()
            .take(n)
            .enumerate()
            .map(|(v, &id)| Seed { node: v as u32, id })
            .collect();
        // Keep the config's float finite: its equality check is
        // `PartialEq` (where NaN != NaN by definition); the adversarial
        // bit patterns live in the state words, which are compared by
        // bit pattern below.
        let cfg = LbConfig::new(beta_mil as f64 / 1000.0, rounds)
            .with_seed(cfg_seed)
            .with_query(QueryRule::ScaledThreshold((bit_patterns[0] % 1000) as f64 / 8.0));
        let output = ClusterOutput {
            partition: Partition::with_k(truth.labels().to_vec(), truth.k()).unwrap(),
            raw_labels,
            seeds,
            rounds,
            states,
        };

        let mut buf = Vec::new();
        let written = write_snapshot(&graph, &[(&cfg, &output)], cfg_seed % 997, &mut buf).unwrap();
        prop_assert_eq!(written as usize, buf.len());
        let loaded = parse_snapshot(&buf).unwrap();
        prop_assert_eq!(loaded.applied_seq, cfg_seed % 997);
        prop_assert_eq!(&loaded.graph, &graph);
        prop_assert_eq!(loaded.entries.len(), 1);
        let (cfg2, out2) = &loaded.entries[0];
        prop_assert_eq!(cfg2, &cfg);
        prop_assert_eq!(&out2.partition, &output.partition);
        prop_assert_eq!(&out2.raw_labels, &output.raw_labels);
        prop_assert_eq!(&out2.seeds, &output.seeds);
        prop_assert_eq!(out2.rounds, output.rounds);
        prop_assert!(states_bit_identical(&out2.states, &output.states));
    }

    /// Real clustering outputs round-trip bit-exactly through an
    /// on-disk store file, not just through memory.
    #[test]
    fn clustered_output_file_round_trip(seed in 0u64..200) {
        let (graph, _) = generators::ring_of_cliques(2, 8, seed).unwrap();
        let cfg = LbConfig::new(0.5, 20).with_seed(seed);
        let Ok(output) = lbc_core::cluster(&graph, &cfg) else {
            return Ok(()); // seedless draw; nothing to persist
        };
        let dir = std::env::temp_dir()
            .join("lbc-store-proptests")
            .join(format!("{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = lbc_store::Store::open(&dir).unwrap();
        store.save("ds", &graph, [(&cfg, &output)], 0).unwrap();
        let (state, report) = store.load("ds").unwrap();
        prop_assert_eq!(report.wal_records, 0);
        prop_assert_eq!(&state.graph, &graph);
        let (cfg2, out2) = &state.entries[0];
        prop_assert_eq!(cfg2, &cfg);
        prop_assert_eq!(&out2.partition, &output.partition);
        prop_assert!(states_bit_identical(&out2.states, &output.states));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// WAL records round-trip exactly, warm-start configs included.
    #[test]
    fn wal_record_round_trip(
        add_nodes in 0usize..5,
        pairs in proptest::collection::vec((0u32..50, 0u32..50), 0..20),
        tol_mil in 0u64..1000,
        patience in 1usize..20,
    ) {
        let mut delta = lbc_graph::GraphDelta::new();
        delta.add_nodes(add_nodes);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let (u, v) = if a == b { (a, b + 50) } else { (a, b) };
            if i % 3 == 0 {
                delta.remove_edge(u, v);
            } else {
                delta.add_edge(u, v);
            }
        }
        let records = vec![
            WalRecord {
                seq: patience as u64,
                policy: ReplayPolicy::WarmRefresh(lbc_core::WarmStartConfig {
                    tolerance: tol_mil as f64 / 1e6,
                    min_decay: 0.02,
                    patience,
                    max_rounds: 128,
                }),
                delta: delta.clone(),
            },
            WalRecord {
                seq: patience as u64 + 1 + tol_mil,
                policy: ReplayPolicy::Invalidate,
                delta,
            },
        ];
        let mut buf = Vec::new();
        for r in &records {
            lbc_store::append_record(&mut buf, r).unwrap();
        }
        let readout = read_wal(&buf).unwrap();
        prop_assert_eq!(readout.records, records);
        prop_assert_eq!(readout.torn_tail_bytes, 0);
    }
}
