//! Snapshot/WAL robustness against on-disk corruption: every failure
//! mode comes back as a typed [`StoreError`] from the real file path —
//! no panics, no silently accepted garbage.

use lbc_core::{cluster, LbConfig};
use lbc_graph::{generators, GraphDelta};
use lbc_store::{ReplayPolicy, Store, StoreError, VERSION};

struct Fixture {
    store: Store,
    snap: std::path::PathBuf,
    wal: std::path::PathBuf,
    dir: std::path::PathBuf,
}

fn fixture(tag: &str) -> Fixture {
    let dir = std::env::temp_dir()
        .join("lbc-store-robustness")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
    let cfg = LbConfig::new(0.5, 25).with_seed(5);
    let out = cluster(&g, &cfg).unwrap();
    store.save("ring", &g, [(&cfg, &out)], 0).unwrap();
    let mut d = GraphDelta::new();
    d.remove_edge(0, 1);
    store
        .append_delta("ring", &ReplayPolicy::Invalidate, &d)
        .unwrap();
    let snap = dir.join("ring.snap");
    let wal = dir.join("ring.wal");
    assert!(snap.exists() && wal.exists());
    Fixture {
        store,
        snap,
        wal,
        dir,
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn truncated_snapshot_file_is_typed() {
    let f = fixture("truncate");
    let bytes = std::fs::read(&f.snap).unwrap();
    for cut in [0, 4, 10, bytes.len() / 3, bytes.len() - 1] {
        std::fs::write(&f.snap, &bytes[..cut]).unwrap();
        let e = f.store.load("ring").unwrap_err();
        assert!(
            matches!(
                e,
                StoreError::Truncated { .. } | StoreError::BadMagic { .. }
            ),
            "cut {cut}: {e}"
        );
    }
}

#[test]
fn bad_magic_file_is_typed() {
    let f = fixture("magic");
    let mut bytes = std::fs::read(&f.snap).unwrap();
    bytes[..8].copy_from_slice(b"NOTASNAP");
    std::fs::write(&f.snap, &bytes).unwrap();
    assert!(matches!(
        f.store.load("ring"),
        Err(StoreError::BadMagic { found }) if &found == b"NOTASNAP"
    ));
}

#[test]
fn version_mismatch_file_is_typed() {
    let f = fixture("version");
    let mut bytes = std::fs::read(&f.snap).unwrap();
    bytes[8..12].copy_from_slice(&(VERSION + 7).to_le_bytes());
    std::fs::write(&f.snap, &bytes).unwrap();
    let e = f.store.load("ring").unwrap_err();
    assert_eq!(
        e,
        StoreError::UnsupportedVersion {
            found: VERSION + 7,
            supported: VERSION
        }
    );
}

#[test]
fn bit_rot_in_snapshot_payload_is_a_checksum_mismatch() {
    let f = fixture("bitrot");
    let bytes = std::fs::read(&f.snap).unwrap();
    for pos in [24, bytes.len() / 2, bytes.len() - 9] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x10;
        std::fs::write(&f.snap, &bad).unwrap();
        let e = f.store.load("ring").unwrap_err();
        assert!(
            matches!(e, StoreError::ChecksumMismatch { .. }),
            "pos {pos}: {e}"
        );
    }
}

#[test]
fn bit_rot_in_wal_payload_is_a_checksum_mismatch() {
    let f = fixture("walrot");
    let mut bytes = std::fs::read(&f.wal).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&f.wal, &bytes).unwrap();
    assert!(matches!(
        f.store.load("ring"),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn torn_wal_tail_still_loads() {
    let f = fixture("torntail");
    let mut bytes = std::fs::read(&f.wal).unwrap();
    // A second, half-written record (crash mid-append).
    let clone = bytes.clone();
    bytes.extend_from_slice(&clone[..clone.len() / 2]);
    std::fs::write(&f.wal, &bytes).unwrap();
    let (state, report) = f.store.load("ring").unwrap();
    assert_eq!(report.wal_records, 1);
    assert!(report.torn_tail_bytes > 0);
    assert!(!state.graph.has_edge(0, 1), "replayed record lost");
}

#[test]
fn append_after_a_torn_tail_heals_the_log() {
    // A new record must never land after crash-torn garbage: the
    // append truncates the torn tail first, so the log stays readable.
    let f = fixture("healappend");
    let mut bytes = std::fs::read(&f.wal).unwrap();
    let clone = bytes.clone();
    bytes.extend_from_slice(&clone[..clone.len() / 2]); // torn second record
    std::fs::write(&f.wal, &bytes).unwrap();
    let mut d2 = GraphDelta::new();
    d2.add_edge(0, 1);
    f.store
        .append_delta("ring", &ReplayPolicy::Invalidate, &d2)
        .unwrap();
    let (state, report) = f.store.load("ring").unwrap();
    assert_eq!(report.wal_records, 2, "torn bytes poisoned the log");
    assert_eq!(report.torn_tail_bytes, 0);
    assert!(state.graph.has_edge(0, 1), "second record lost");
}

#[test]
fn foreign_file_is_not_a_snapshot() {
    let f = fixture("foreign");
    std::fs::write(&f.snap, b"this is an edge list, honest\n0 1\n").unwrap();
    assert!(matches!(
        f.store.load("ring"),
        Err(StoreError::BadMagic { .. })
    ));
}

#[test]
fn injected_io_faults_surface_and_torn_tail_heals() {
    // The same torn-tail recovery, but driven through the seeded
    // fault-injection seam the chaos harness uses: a scripted oracle
    // tears one append, fails one write, fails one fsync — every
    // failure comes back typed, the sequence lineage never skips, and
    // the next clean append truncates the garbage away.
    let f = fixture("iofaults");
    let mut store = Store::open(&f.dir).unwrap();
    store.set_io_faults(std::sync::Arc::new(lbc_faults::ScriptedIoFaults::new(
        vec![
            lbc_faults::IoFault::Torn(9),
            lbc_faults::IoFault::Pass,
            lbc_faults::IoFault::FailWrite,
            lbc_faults::IoFault::Pass,
            lbc_faults::IoFault::FailFsync,
        ],
    )));
    let mut d = GraphDelta::new();
    d.add_edge(0, 11);

    // Torn append: a prefix reaches the disk, the caller sees an
    // error, and the record did NOT commit.
    let clean_len = std::fs::metadata(&f.wal).unwrap().len();
    let e = store
        .append_delta("ring", &ReplayPolicy::Invalidate, &d)
        .unwrap_err();
    assert!(matches!(e, StoreError::Io(_)), "{e}");
    assert!(std::fs::metadata(&f.wal).unwrap().len() > clean_len);
    assert_eq!(store.last_seq("ring").unwrap(), 1);
    let (state, report) = store.load("ring").unwrap();
    assert_eq!(state.applied_seq, 1);
    assert!(report.torn_tail_bytes > 0, "torn prefix should be visible");

    // The next append heals the tail and commits at seq 2.
    let (seq, _) = store
        .append_delta_seq("ring", &ReplayPolicy::Invalidate, &d)
        .unwrap();
    assert_eq!(seq, 2);
    let (state, report) = store.load("ring").unwrap();
    assert_eq!(state.applied_seq, 2);
    assert_eq!(report.torn_tail_bytes, 0, "garbage survived the heal");
    assert!(state.graph.has_edge(0, 11));

    // FailWrite: nothing reaches the disk at all.
    let len_before = std::fs::metadata(&f.wal).unwrap().len();
    let e = store
        .append_delta("ring", &ReplayPolicy::Invalidate, &d)
        .unwrap_err();
    assert!(matches!(e, StoreError::Io(_)), "{e}");
    assert_eq!(std::fs::metadata(&f.wal).unwrap().len(), len_before);
    assert_eq!(store.last_seq("ring").unwrap(), 2);

    let (seq, _) = store
        .append_delta_seq("ring", &ReplayPolicy::Invalidate, &d)
        .unwrap();
    assert_eq!(seq, 3);

    // FailFsync: the bytes went down but durability is unknown — the
    // caller must see a failure, and whether or not the record
    // survives, the log stays replayable.
    let e = store
        .append_delta("ring", &ReplayPolicy::Invalidate, &d)
        .unwrap_err();
    assert!(matches!(e, StoreError::Io(_)), "{e}");
    let (state, _) = store.load("ring").unwrap();
    assert!(state.applied_seq >= 3);

    // A store without the oracle picks the lineage back up.
    let (seq, _) = f
        .store
        .append_delta_seq("ring", &ReplayPolicy::Invalidate, &d)
        .unwrap();
    assert!(seq >= 4);
    f.store.load("ring").unwrap();
}

#[test]
fn term_vote_survives_reopen_and_rejects_rot() {
    // The kill-9 edge of single-vote-per-term: the persisted
    // (term, voted_for) pair must come back bit-for-bit from a fresh
    // Store handle over the same directory — the moral equivalent of
    // a voter that granted, died, and rebooted mid-election.
    let f = fixture("term-vote");
    assert_eq!(f.store.load_vote().unwrap(), None);
    f.store.save_vote(3, 7).unwrap();
    assert_eq!(f.store.load_vote().unwrap(), Some((3, 7)));
    f.store.save_vote(4, u64::MAX).unwrap(); // term raise, no vote
    let reopened = Store::open(&f.dir).unwrap();
    assert_eq!(reopened.load_vote().unwrap(), Some((4, u64::MAX)));

    // Bit rot is a typed checksum error, never a silently forgotten
    // vote.
    let path = f.dir.join("term-vote");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[9] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let e = reopened.load_vote().unwrap_err();
    assert!(matches!(e, StoreError::ChecksumMismatch { .. }), "{e}");

    // Wrong shape is framing corruption.
    std::fs::write(&path, b"LBCVshort").unwrap();
    let e = reopened.load_vote().unwrap_err();
    assert!(matches!(e, StoreError::Corrupt(_)), "{e}");
}
