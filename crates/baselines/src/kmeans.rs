//! k-means with k-means++ initialisation and Lloyd iterations.
//!
//! Operates on row-major point sets (`points[i]` is one point). Used by
//! the spectral baseline and by the multi-dimensional averaging dynamics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per point (`0..k`).
    pub assignments: Vec<u32>,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++ seeding followed by Lloyd until convergence or `max_iters`.
///
/// # Panics
/// If `points` is empty, dimensions are ragged, `k == 0`, or
/// `k > points.len()`.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, seed: u64) -> KMeansResult {
    let n = points.len();
    assert!(n > 0, "no points");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "ragged points");
    assert!(k >= 1 && k <= n, "k = {k} out of range for {n} points");
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ initialisation.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..n)].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All mass at existing centroids: pick uniformly.
            rng.random_range(0..n)
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, centroids.last().unwrap());
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }

    // Lloyd iterations.
    let mut assignments = vec![0u32; n];
    let mut iterations = 0usize;
    for it in 0..max_iters.max(1) {
        iterations = it + 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                let d = sq_dist(p, cent);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Recompute centroids; empty clusters re-seed to the farthest
        // point from its centroid assignment (standard fix-up).
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i] as usize;
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_dist(&points[a], &centroids[assignments[a] as usize]);
                        let db = sq_dist(&points[b], &centroids[assignments[b] as usize]);
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap();
                centroids[c] = points[far].clone();
                changed = true;
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / counts[c] as f64;
                }
            }
        }
        if !changed && it > 0 {
            break;
        }
    }
    let inertia = points
        .iter()
        .enumerate()
        .map(|(i, p)| sq_dist(p, &centroids[assignments[i] as usize]))
        .sum();
    KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: f64, count: usize, spread: f64, rng: &mut StdRng) -> Vec<Vec<f64>> {
        (0..count)
            .map(|_| {
                vec![
                    center + rng.random_range(-spread..spread),
                    center + rng.random_range(-spread..spread),
                ]
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut points = blob(0.0, 30, 0.5, &mut rng);
        points.extend(blob(10.0, 30, 0.5, &mut rng));
        let r = kmeans(&points, 2, 50, 7);
        // First 30 together, last 30 together.
        let first = r.assignments[0];
        assert!(r.assignments[..30].iter().all(|&a| a == first));
        assert!(r.assignments[30..].iter().all(|&a| a != first));
        assert!(r.inertia < 30.0);
    }

    #[test]
    fn k_equals_one() {
        let points = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = kmeans(&points, 1, 10, 3);
        assert!(r.assignments.iter().all(|&a| a == 0));
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn k_equals_n_perfect_fit() {
        let points = vec![vec![0.0], vec![5.0], vec![9.0]];
        let r = kmeans(&points, 3, 20, 5);
        let mut sorted = r.assignments.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn duplicate_points_handled() {
        let points = vec![vec![1.0, 1.0]; 10];
        let r = kmeans(&points, 3, 10, 2);
        assert_eq!(r.assignments.len(), 10);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut points = blob(0.0, 20, 1.0, &mut rng);
        points.extend(blob(5.0, 20, 1.0, &mut rng));
        let a = kmeans(&points, 2, 30, 9);
        let b = kmeans(&points, 2, 30, 9);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    #[should_panic]
    fn rejects_k_zero() {
        let _ = kmeans(&[vec![0.0]], 0, 5, 1);
    }

    #[test]
    #[should_panic]
    fn rejects_k_above_n() {
        let _ = kmeans(&[vec![0.0]], 2, 5, 1);
    }
}
