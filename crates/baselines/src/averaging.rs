//! Averaging dynamics in the style of Becchetti et al. \[3\] ("Find your
//! place", SODA'17).
//!
//! Each node starts with a Rademacher value `±1`; every round, every node
//! replaces its value with the lazy average over *all* its neighbours,
//! `x_{t+1} = ((I + P) / 2) x_t`. The stationary component is common to
//! all nodes, so consecutive differences `x_t − x_{t+1}` align with the
//! second eigenvector, whose sign splits two communities; for `k > 2` we
//! run `h` independent copies and k-means the resulting `h`-dimensional
//! difference embedding (their community-sensitive generalisation).
//!
//! The communication-relevant property (and the reason the paper
//! contrasts with it, §1.3): every node talks to **all** neighbours each
//! round, i.e. `2m` messages per round versus the matching model's
//! `≤ n/2` pairs — on dense graphs this is the dominating cost, which
//! experiment E4 measures.

use lbc_graph::{Graph, Partition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kmeans::kmeans;

/// Output of the averaging-dynamics baseline.
#[derive(Debug, Clone)]
pub struct AveragingOutput {
    /// Discovered partition (labels `0..k`).
    pub partition: Partition,
    /// Total words exchanged: `rounds · 2m · dims` (each node ships its
    /// `dims` current values to every neighbour every round).
    pub words: u64,
    /// Rounds executed.
    pub rounds: usize,
}

/// One lazy-averaging step `x ← (x + P·x)/2` (walk matrix with §4.5-style
/// degree regularisation so irregular graphs stay symmetric).
fn step(g: &Graph, cap: usize, x: &[f64]) -> Vec<f64> {
    let n = g.n();
    let mut out = vec![0.0; n];
    for v in 0..n {
        let d = g.degree(v as u32);
        let mut acc = (cap - d) as f64 * x[v];
        for &w in g.neighbours(v as u32) {
            acc += x[w as usize];
        }
        let px = acc / cap as f64;
        out[v] = 0.5 * (x[v] + px);
    }
    out
}

/// Run the averaging dynamics.
///
/// * `k` — number of clusters to output.
/// * `rounds` — averaging rounds (≈ `O(log n / gap)` in their analysis).
/// * `dims` — number of independent copies (`≥ k` recommended; for
///   `k = 2`, `dims = 1` reproduces the classic sign rule).
///
/// # Panics
/// If `k == 0`, `k > n`, `dims == 0`, or `rounds == 0`.
pub fn becchetti_averaging(
    g: &Graph,
    k: usize,
    rounds: usize,
    dims: usize,
    seed: u64,
) -> AveragingOutput {
    let n = g.n();
    assert!(k >= 1 && k <= n, "k = {k} out of range");
    assert!(dims >= 1, "need at least one dimension");
    assert!(rounds >= 1, "need at least one round");
    let cap = g.max_degree().max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    // dims independent Rademacher initialisations.
    let mut xs: Vec<Vec<f64>> = (0..dims)
        .map(|_| {
            (0..n)
                .map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 })
                .collect()
        })
        .collect();
    for x in &mut xs {
        for _ in 0..rounds {
            *x = step(g, cap, x);
        }
    }
    // One extra step per dimension; embed by the consecutive difference
    // (cancels the stationary component).
    let diffs: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| {
            let next = step(g, cap, x);
            x.iter().zip(&next).map(|(a, b)| a - b).collect()
        })
        .collect();
    // Normalise each difference vector so k-means sees comparable scales.
    let points: Vec<Vec<f64>> = (0..n)
        .map(|v| {
            diffs
                .iter()
                .map(|d| {
                    let norm: f64 = d.iter().map(|y| y * y).sum::<f64>().sqrt();
                    if norm > 0.0 {
                        d[v] / norm
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let result = kmeans(&points, k, 100, seed ^ 0xBECC);
    let words = (rounds as u64 + 1) * 2 * g.m() as u64 * dims as u64;
    AveragingOutput {
        partition: Partition::with_k(result.assignments, k).expect("labels in range"),
        words,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_eval::accuracy;
    use lbc_graph::generators;

    #[test]
    fn two_communities_recovered() {
        let (g, truth) = generators::dumbbell(40, 8, 2, 3).unwrap();
        let out = becchetti_averaging(&g, 2, 60, 3, 5);
        let acc = accuracy(truth.labels(), out.partition.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn multi_community_with_embedding() {
        let (g, truth) = generators::ring_of_cliques(4, 16, 0).unwrap();
        let out = becchetti_averaging(&g, 4, 60, 8, 7);
        let acc = accuracy(truth.labels(), out.partition.labels());
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn word_count_formula() {
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let out = becchetti_averaging(&g, 2, 10, 2, 1);
        assert_eq!(out.words, 11 * 2 * g.m() as u64 * 2);
        assert_eq!(out.rounds, 10);
    }

    #[test]
    fn dense_graph_costs_more_words_than_sparse() {
        let dense = generators::complete(40).unwrap();
        let sparse = generators::cycle(40).unwrap();
        let wd = becchetti_averaging(&dense, 2, 10, 1, 1).words;
        let ws = becchetti_averaging(&sparse, 2, 10, 1, 1).words;
        assert!(wd > 10 * ws);
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, _) = generators::dumbbell(20, 6, 2, 9).unwrap();
        let a = becchetti_averaging(&g, 2, 30, 2, 4);
        let b = becchetti_averaging(&g, 2, 30, 2, 4);
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    #[should_panic]
    fn zero_rounds_rejected() {
        let (g, _) = generators::ring_of_cliques(2, 4, 0).unwrap();
        let _ = becchetti_averaging(&g, 2, 0, 1, 1);
    }
}
