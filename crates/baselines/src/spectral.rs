//! Spectral clustering: the centralised comparator.
//!
//! Embed node `v` as `(f_1(v), …, f_k(v))` using the top-`k` eigenvectors
//! of the (regularised) walk matrix, then run k-means on the embedding —
//! the "spectral clustering works!" pipeline of Peng, Sun & Zanetti \[25\]
//! that this paper's algorithm is measured against. Strong accuracy, but
//! inherently centralised: it needs the global spectrum.

use lbc_graph::{Graph, Partition};
use lbc_linalg::spectral::SpectralOracle;

use crate::kmeans::kmeans;

/// Cluster `g` into `k` parts via spectral embedding + k-means.
///
/// # Panics
/// If `k == 0` or `k > n`.
pub fn spectral_clustering(g: &Graph, k: usize, seed: u64) -> Partition {
    let n = g.n();
    assert!(k >= 1 && k <= n, "k = {k} out of range");
    let oracle = SpectralOracle::compute(g, k, seed);
    let vectors = &oracle.spectrum().vectors;
    let points: Vec<Vec<f64>> = (0..n)
        .map(|v| vectors.iter().map(|f| f[v]).collect())
        .collect();
    let result = kmeans(&points, k, 100, seed ^ KMEANS_SALT);
    Partition::with_k(result.assignments, k).expect("kmeans labels in range")
}

/// Decouples the k-means stream from the Lanczos stream.
const KMEANS_SALT: u64 = 0x00C0_FFEE;

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_eval::accuracy;
    use lbc_graph::generators;

    #[test]
    fn recovers_ring_of_cliques() {
        let (g, truth) = generators::ring_of_cliques(4, 15, 0).unwrap();
        let found = spectral_clustering(&g, 4, 3);
        let acc = accuracy(truth.labels(), found.labels());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn recovers_planted_partition() {
        let (g, truth) = generators::planted_partition(3, 50, 0.4, 0.01, 9).unwrap();
        let found = spectral_clustering(&g, 3, 5);
        let acc = accuracy(truth.labels(), found.labels());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn single_cluster_trivial() {
        let g = generators::complete(10).unwrap();
        let found = spectral_clustering(&g, 1, 1);
        assert!(found.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn deterministic() {
        let (g, _) = generators::ring_of_cliques(3, 10, 0).unwrap();
        let a = spectral_clustering(&g, 3, 7);
        let b = spectral_clustering(&g, 3, 7);
        assert_eq!(a, b);
    }
}
