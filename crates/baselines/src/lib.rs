//! Comparator algorithms for the experiment suite.
//!
//! §1.3 of the paper positions the load-balancing algorithm against three
//! families; all are implemented here so experiment E4 can reproduce the
//! "who wins" shape:
//!
//! * [`spectral_clustering`] — the centralised gold standard (Peng, Sun &
//!   Zanetti \[25\]): embed nodes by the top-`k` eigenvectors of the walk
//!   matrix, then k-means. Accurate, but needs global spectral
//!   computation.
//! * [`becchetti_averaging`] — the averaging dynamics of Becchetti et
//!   al. \[3\]: every node averages with *all* neighbours each round and
//!   labels by the sign pattern of consecutive differences. Simple, but
//!   `Θ(m)` messages per round (the communication objection the paper
//!   raises against it on dense graphs).
//! * [`label_propagation`] — the folk practical baseline: adopt the
//!   majority label among neighbours.
//!
//! Shared machinery: [`kmeans`] (k-means++ initialisation + Lloyd).

pub mod averaging;
pub mod kempe_mcsherry;
pub mod kmeans;
pub mod labelprop;
pub mod random_walks;
pub mod spectral;

pub use averaging::{becchetti_averaging, AveragingOutput};
pub use kempe_mcsherry::{kempe_mcsherry, OrthogonalIterationOutput};
pub use kmeans::{kmeans, KMeansResult};
pub use labelprop::label_propagation;
pub use random_walks::{walk_clustering, WalkClusteringOutput};
pub use spectral::spectral_clustering;
