//! Decentralised orthogonal iteration in the style of Kempe & McSherry
//! \[21\] ("A decentralized algorithm for spectral analysis", STOC'04).
//!
//! Their algorithm computes the top-`k` eigenvectors of a graph matrix
//! in a network: each node holds one row of an `n × k` matrix `V`;
//! repeatedly (i) apply the matrix (`V ← P·V`, one neighbour-exchange
//! round), then (ii) orthonormalise the columns. Step (ii) needs the
//! `k × k` Gram matrix `K = VᵀV` — a *global* sum, which they aggregate
//! with push-sum gossip costing `Θ(τ_mix)` rounds per iteration, where
//! `τ_mix` is the mixing time of the whole graph.
//!
//! That is precisely the paper's §1.3 objection: for a graph made of
//! expanders joined by a few edges, `τ_mix = poly(n)` (the random walk
//! must cross the sparse cut repeatedly) while the load-balancing
//! algorithm needs only `T = O(polylog n)` — it never waits for global
//! mixing. This module implements the numerical core faithfully
//! (orthogonal iteration with Gram/Cholesky orthonormalisation, exact
//! aggregates) and *charges* the round/word cost its gossip
//! implementation would pay, so experiment E11 can reproduce the
//! separation.

use lbc_graph::{Graph, Partition};
use lbc_linalg::ops::{SymOp, WalkOperator};
use lbc_linalg::spectral::SpectralOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kmeans::kmeans;

/// Output of the decentralised orthogonal iteration baseline.
#[derive(Debug, Clone)]
pub struct OrthogonalIterationOutput {
    /// Discovered partition (k-means over the rows of `V`).
    pub partition: Partition,
    /// Power/orthonormalisation iterations executed.
    pub iterations: usize,
    /// Estimated global mixing time `τ_mix = ⌈ln n / (1 − λ_2)⌉` used
    /// for cost charging.
    pub tau_mix: u64,
    /// Network rounds the gossip implementation would need:
    /// `iterations · (1 + τ_mix)`.
    pub charged_rounds: u64,
    /// Words: `2m·k` per power step plus `n·k²` per push-sum round.
    pub charged_words: u64,
}

/// Cholesky factorisation `K = L·Lᵀ` of a small SPD matrix (row-major).
/// Returns `None` when `K` is not (numerically) positive definite.
fn cholesky(k: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = k.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = k[i][j];
            sum -= l[i][..j]
                .iter()
                .zip(&l[j][..j])
                .map(|(a, b)| a * b)
                .sum::<f64>();
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i][i] = sum.sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    Some(l)
}

/// Replace each row `v` of `vmat` with `v · L^{-T}` (so the columns of
/// the matrix become orthonormal when `K = VᵀV = LLᵀ`).
fn apply_inverse_transpose(vmat: &mut [Vec<f64>], l: &[Vec<f64>]) {
    let k = l.len();
    for row in vmat.iter_mut() {
        // Solve x · Lᵀ = row  ⇔  L · xᵀ = rowᵀ (forward substitution).
        let mut x = vec![0.0; k];
        for i in 0..k {
            let mut sum = row[i];
            for p in 0..i {
                sum -= l[i][p] * x[p];
            }
            x[i] = sum / l[i][i];
        }
        row.copy_from_slice(&x);
    }
}

/// Run decentralised orthogonal iteration and cluster by k-means on the
/// resulting spectral embedding.
///
/// # Panics
/// If `k == 0`, `k > n`, or `iterations == 0`.
pub fn kempe_mcsherry(
    g: &Graph,
    k: usize,
    iterations: usize,
    seed: u64,
) -> OrthogonalIterationOutput {
    let n = g.n();
    assert!(k >= 1 && k <= n, "k = {k} out of range");
    assert!(iterations >= 1, "need at least one iteration");
    let op = WalkOperator::new(g);
    let mut rng = StdRng::seed_from_u64(seed);
    // Rows of V, one per node.
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..k).map(|_| rng.random_range(-1.0..1.0)).collect())
        .collect();

    let mut col = vec![0.0; n];
    let mut out_col = vec![0.0; n];
    for _ in 0..iterations {
        // V ← P·V, column by column through the walk operator.
        for c in 0..k {
            for (i, row) in v.iter().enumerate() {
                col[i] = row[c];
            }
            op.apply(&col, &mut out_col);
            for (i, row) in v.iter_mut().enumerate() {
                row[c] = out_col[i];
            }
        }
        // Gram matrix K = VᵀV (the quantity push-sum would aggregate).
        let mut gram = vec![vec![0.0; k]; k];
        for row in &v {
            for i in 0..k {
                for j in 0..k {
                    gram[i][j] += row[i] * row[j];
                }
            }
        }
        // Regularise minutely so early near-rank-deficient iterates
        // don't abort the factorisation.
        for (i, row) in gram.iter_mut().enumerate() {
            row[i] += 1e-12;
        }
        if let Some(l) = cholesky(&gram) {
            apply_inverse_transpose(&mut v, &l);
        } else {
            // Re-randomise the degenerate basis and continue.
            for row in v.iter_mut() {
                for x in row.iter_mut() {
                    *x = rng.random_range(-1.0..1.0);
                }
            }
        }
    }

    // Cost charging (see module docs).
    let oracle = SpectralOracle::compute(g, 2.min(n), seed ^ 0x4B4D);
    let gap2 = if n >= 2 {
        (1.0 - oracle.lambda(2)).max(1e-9)
    } else {
        1.0
    };
    let tau_mix = ((n.max(2) as f64).ln() / gap2).ceil() as u64;
    let charged_rounds = iterations as u64 * (1 + tau_mix);
    let words_per_power = 2 * g.m() as u64 * k as u64;
    let words_per_pushsum_round = n as u64 * (k * k) as u64;
    let charged_words = iterations as u64 * (words_per_power + tau_mix * words_per_pushsum_round);

    let result = kmeans(&v, k, 100, seed ^ 0x4B4D_0001);
    OrthogonalIterationOutput {
        partition: Partition::with_k(result.assignments, k).expect("labels in range"),
        iterations,
        tau_mix,
        charged_rounds,
        charged_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_eval::accuracy;
    use lbc_graph::generators;

    #[test]
    fn cholesky_known_factorisation() {
        // K = [[4, 2], [2, 3]] = L·Lᵀ with L = [[2, 0], [1, √2]].
        let k = vec![vec![4.0, 2.0], vec![2.0, 3.0]];
        let l = cholesky(&k).unwrap();
        assert!((l[0][0] - 2.0).abs() < 1e-12);
        assert!((l[1][0] - 1.0).abs() < 1e-12);
        assert!((l[1][1] - 2.0f64.sqrt()).abs() < 1e-12);
        // Not PD → None.
        let bad = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        assert!(cholesky(&bad).is_none());
    }

    #[test]
    fn orthonormalisation_step_works() {
        // Two deliberately correlated columns become orthonormal.
        let mut v = vec![
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![0.0, 1.0],
            vec![2.0, 1.0],
        ];
        let mut gram = vec![vec![0.0; 2]; 2];
        for row in &v {
            for i in 0..2 {
                for j in 0..2 {
                    gram[i][j] += row[i] * row[j];
                }
            }
        }
        let l = cholesky(&gram).unwrap();
        apply_inverse_transpose(&mut v, &l);
        let mut new_gram = [[0.0f64; 2]; 2];
        for row in &v {
            for i in 0..2 {
                for j in 0..2 {
                    new_gram[i][j] += row[i] * row[j];
                }
            }
        }
        assert!((new_gram[0][0] - 1.0).abs() < 1e-9);
        assert!((new_gram[1][1] - 1.0).abs() < 1e-9);
        assert!(new_gram[0][1].abs() < 1e-9);
    }

    #[test]
    fn recovers_ring_of_cliques() {
        let (g, truth) = generators::ring_of_cliques(3, 20, 0).unwrap();
        let out = kempe_mcsherry(&g, 3, 60, 5);
        let acc = accuracy(truth.labels(), out.partition.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn charged_rounds_blow_up_on_thin_cuts() {
        // Same cluster structure, thinner bridge ⇒ smaller global gap ⇒
        // larger mixing time ⇒ more charged rounds.
        let (thick, _) = generators::dumbbell(50, 8, 10, 3).unwrap();
        let (thin, _) = generators::dumbbell(50, 8, 1, 3).unwrap();
        let o_thick = kempe_mcsherry(&thick, 2, 10, 1);
        let o_thin = kempe_mcsherry(&thin, 2, 10, 1);
        assert!(
            o_thin.tau_mix > 3 * o_thick.tau_mix,
            "thin {} vs thick {}",
            o_thin.tau_mix,
            o_thick.tau_mix
        );
        assert!(o_thin.charged_rounds > o_thick.charged_rounds);
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, _) = generators::ring_of_cliques(2, 12, 0).unwrap();
        let a = kempe_mcsherry(&g, 2, 30, 9);
        let b = kempe_mcsherry(&g, 2, 30, 9);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.charged_rounds, b.charged_rounds);
    }

    #[test]
    #[should_panic]
    fn zero_iterations_rejected() {
        let (g, _) = generators::ring_of_cliques(2, 6, 0).unwrap();
        let _ = kempe_mcsherry(&g, 2, 0, 1);
    }
}
