//! Synchronous label propagation — the folk practical baseline.
//!
//! Every node starts with its own id as label; each round it adopts the
//! majority label among its neighbours (ties broken towards the smallest
//! label; a node keeps its label if it ties the majority). Terminates at
//! stability or after `max_rounds`.

use std::collections::HashMap;

use lbc_graph::{Graph, Partition};

/// Run synchronous label propagation. Returns the discovered partition
/// (labels compacted to `0..k'`) and the number of rounds executed.
pub fn label_propagation(g: &Graph, max_rounds: usize) -> (Partition, usize) {
    let n = g.n();
    if n == 0 {
        return (Partition::with_k(vec![], 1).unwrap(), 0);
    }
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut rounds = 0usize;
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for _ in 0..max_rounds {
        rounds += 1;
        let mut next = labels.clone();
        let mut changed = false;
        for v in 0..n {
            let neigh = g.neighbours(v as u32);
            if neigh.is_empty() {
                continue;
            }
            counts.clear();
            for &w in neigh {
                *counts.entry(labels[w as usize]).or_insert(0) += 1;
            }
            // Majority; ties → smallest label.
            let mut best_label = labels[v];
            let mut best_count = 0usize;
            let mut entries: Vec<(u32, usize)> = counts.iter().map(|(&l, &c)| (l, c)).collect();
            entries.sort_unstable();
            for (l, c) in entries {
                if c > best_count {
                    best_count = c;
                    best_label = l;
                }
            }
            if next[v] != best_label {
                next[v] = best_label;
                changed = true;
            }
        }
        labels = next;
        if !changed {
            break;
        }
    }
    // Compact labels.
    let mut distinct: Vec<u32> = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let compact: Vec<u32> = labels
        .iter()
        .map(|l| distinct.binary_search(l).unwrap() as u32)
        .collect();
    (
        Partition::with_k(compact, distinct.len()).expect("compacted labels in range"),
        rounds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_eval::accuracy;
    use lbc_graph::generators;

    #[test]
    fn cliques_converge_to_their_own_labels() {
        let (g, truth) = generators::ring_of_cliques(3, 12, 0).unwrap();
        let (found, rounds) = label_propagation(&g, 50);
        assert!(rounds < 50, "should stabilise early");
        let acc = accuracy(truth.labels(), found.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn planted_partition_recovered() {
        let (g, truth) = generators::planted_partition(2, 40, 0.5, 0.01, 5).unwrap();
        let (found, _) = label_propagation(&g, 50);
        let acc = accuracy(truth.labels(), found.labels());
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let (p, rounds) = label_propagation(&g, 10);
        assert_eq!(p.n(), 0);
        assert_eq!(rounds, 0);
    }

    use lbc_graph::Graph;

    #[test]
    fn isolated_nodes_keep_their_labels() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let (p, _) = label_propagation(&g, 10);
        // Node 2 is isolated and stays alone.
        assert_ne!(p.labels()[2], p.labels()[0]);
    }

    #[test]
    fn deterministic() {
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        assert_eq!(label_propagation(&g, 30).0, label_propagation(&g, 30).0);
    }
}
