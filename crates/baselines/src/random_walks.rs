//! Clustering by multiple random walks — the sampling counterpart of
//! load balancing.
//!
//! The connection the paper exploits is that one matching round behaves
//! in expectation like a lazy random-walk step
//! (`E[M] = (1 − d̄/4)I + (d̄/4)P`, Lemma 2.1). The *sampling* version
//! of the same idea (cf. the multiple-random-walks literature the paper
//! cites \[2, 9, 12\]) estimates the walk distribution `P̃^T χ_{v_i}`
//! empirically: launch `R` independent lazy walks from each seed and
//! count where they end. Each node then labels itself by the seed whose
//! empirical end-frequency at it clears the threshold — the direct
//! analogue of the paper's query procedure, with Monte-Carlo noise
//! `Θ(1/√R)` in place of the averaging process's deterministic
//! contraction.
//!
//! Communication: each walk step is one message, so the total cost is
//! `s · R · T` messages — matching the load-balancing algorithm's
//! budget requires `R ≈ n/2` walks per seed; the interesting regime
//! (and the point of the `walks` ablation) is how quickly accuracy
//! decays for smaller `R`.

use lbc_distsim::NodeRng;
use lbc_graph::{Graph, Partition};

/// Output of the multiple-random-walks clustering.
#[derive(Debug, Clone)]
pub struct WalkClusteringOutput {
    pub partition: Partition,
    /// Seed nodes (one label per seed, in input order).
    pub seeds: Vec<u32>,
    /// Total walk steps taken (= messages in the walk cost model).
    pub steps: u64,
}

/// Cluster by launching `walks_per_seed` lazy random walks of length
/// `length` from each of `seeds`, then thresholding end-frequencies.
///
/// The walk is the §4.5-regularised lazy walk: at each step stay put
/// with probability `1 − d_v/(2D)` where `D = Δ`, otherwise move to a
/// uniform neighbour — mirroring `E[M]`'s laziness so `length` is
/// comparable to the averaging round count.
///
/// Nodes whose best frequency is below `threshold` (fraction of walks)
/// fall back to their argmax seed; nodes never visited at walk ends get
/// the extra "unlabelled" cluster.
pub fn walk_clustering(
    g: &Graph,
    seeds: &[u32],
    walks_per_seed: usize,
    length: usize,
    threshold: f64,
    seed: u64,
) -> WalkClusteringOutput {
    let n = g.n();
    assert!(!seeds.is_empty(), "need at least one seed");
    assert!(seeds.iter().all(|&s| (s as usize) < n), "seed out of range");
    assert!(walks_per_seed >= 1, "need at least one walk per seed");
    let cap = g.max_degree().max(1);
    let mut rng = NodeRng::from_seed(seed ^ 0x3a1c_0000_0000_0007);
    // end_counts[i][v] = number of walks from seed i ending at v.
    let mut end_counts = vec![vec![0u32; n]; seeds.len()];
    let mut steps = 0u64;
    for (i, &src) in seeds.iter().enumerate() {
        for _ in 0..walks_per_seed {
            let mut at = src as usize;
            for _ in 0..length {
                let d = g.degree(at as u32);
                // Lazy step matching E[M]: move w.p. d/(2D).
                if d > 0 && rng.next_f64() < d as f64 / (2.0 * cap as f64) {
                    at = g.neighbour_at(at as u32, rng.below(d)) as usize;
                }
                steps += 1;
            }
            end_counts[i][at] += 1;
        }
    }
    // Label: smallest seed index whose frequency clears the threshold;
    // fall back to argmax; never-visited nodes become the extra label.
    let unlabelled = seeds.len() as u32;
    let mut labels = vec![unlabelled; n];
    let mut any_unlabelled = false;
    for v in 0..n {
        let mut chosen: Option<u32> = None;
        let mut best = (0u32, 0u32); // (count, seed idx)
        for (i, counts) in end_counts.iter().enumerate() {
            let c = counts[v];
            if chosen.is_none() && c as f64 >= threshold * walks_per_seed as f64 {
                chosen = Some(i as u32);
            }
            if c > best.0 {
                best = (c, i as u32);
            }
        }
        labels[v] = match (chosen, best.0) {
            (Some(i), _) => i,
            (None, c) if c > 0 => best.1,
            _ => {
                any_unlabelled = true;
                unlabelled
            }
        };
    }
    let k = seeds.len() + usize::from(any_unlabelled);
    WalkClusteringOutput {
        partition: Partition::with_k(labels, k).expect("labels in range"),
        seeds: seeds.to_vec(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_eval::accuracy;
    use lbc_graph::generators;

    #[test]
    fn many_walks_recover_ring_of_cliques() {
        let (g, truth) = generators::ring_of_cliques(3, 16, 0).unwrap();
        // One seed per clique, generous sampling.
        let out = walk_clustering(&g, &[0, 16, 32], 800, 60, 0.03, 5);
        let acc = accuracy(truth.labels(), out.partition.labels());
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(out.steps, 3 * 800 * 60);
    }

    #[test]
    fn few_walks_are_noisy() {
        let (g, truth) = generators::ring_of_cliques(3, 16, 0).unwrap();
        let many = walk_clustering(&g, &[0, 16, 32], 800, 60, 0.03, 5);
        let few = walk_clustering(&g, &[0, 16, 32], 4, 60, 0.03, 5);
        let acc_many = accuracy(truth.labels(), many.partition.labels());
        let acc_few = accuracy(truth.labels(), few.partition.labels());
        assert!(
            acc_few < acc_many,
            "sampling noise should hurt: many {acc_many} vs few {acc_few}"
        );
    }

    #[test]
    fn unvisited_nodes_get_extra_label() {
        // Length-0 walks never leave the seeds.
        let (g, _) = generators::ring_of_cliques(2, 8, 0).unwrap();
        let out = walk_clustering(&g, &[0], 10, 0, 0.5, 1);
        assert_eq!(out.partition.label(0), 0);
        assert_eq!(out.partition.label(5), 1); // unlabelled cluster
        assert_eq!(out.partition.k(), 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, _) = generators::ring_of_cliques(2, 10, 0).unwrap();
        let a = walk_clustering(&g, &[0, 10], 50, 30, 0.02, 9);
        let b = walk_clustering(&g, &[0, 10], 50, 30, 0.02, 9);
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    #[should_panic]
    fn empty_seed_list_rejected() {
        let (g, _) = generators::ring_of_cliques(2, 6, 0).unwrap();
        let _ = walk_clustering(&g, &[], 10, 10, 0.1, 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_seed_rejected() {
        let (g, _) = generators::ring_of_cliques(2, 6, 0).unwrap();
        let _ = walk_clustering(&g, &[99], 10, 10, 0.1, 1);
    }
}
